// Unit tests for the tunable LC tank and the discrete resonator.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "rf/lc_tank.h"
#include "sim/process.h"

namespace {

using namespace analock;
using rf::LcTank;
using rf::Resonator;

TEST(LcTank, NominalResonanceCoversRange) {
  const LcTank tank(sim::ProcessVariation::nominal());
  // Minimum capacitance (codes 0,0) must resonate above 3 GHz; maximum
  // must reach below 1.5 GHz.
  EXPECT_GT(tank.resonance_hz(0, 0), 3.0e9);
  EXPECT_LT(tank.resonance_hz(255, 255), 1.5e9);
}

TEST(LcTank, CapacitanceIsMonotoneInCodes) {
  const LcTank tank(sim::ProcessVariation::nominal());
  EXPECT_LT(tank.capacitance(10, 0), tank.capacitance(11, 0));
  EXPECT_LT(tank.capacitance(10, 5), tank.capacitance(10, 6));
}

TEST(LcTank, FrequencyMonotoneDecreasingInCapacitance) {
  const LcTank tank(sim::ProcessVariation::nominal());
  double prev = 1e18;
  for (std::uint32_t c = 0; c <= 255; c += 17) {
    const double f = tank.resonance_hz(c, 128);
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(LcTank, FineStepIsFractionOfCoarse) {
  const LcTank tank(sim::ProcessVariation::nominal());
  const double coarse_step =
      tank.resonance_hz(10, 0) - tank.resonance_hz(11, 0);
  const double fine_step =
      tank.resonance_hz(10, 0) - tank.resonance_hz(10, 1);
  EXPECT_NEAR(coarse_step / fine_step, 200.0, 10.0);
}

TEST(LcTank, FineRangeCoversOneCoarseStep) {
  const LcTank tank(sim::ProcessVariation::nominal());
  // Fine span (255 steps) must exceed one coarse step so no frequency gap
  // exists between adjacent coarse codes.
  EXPECT_GT(255.0 * LcTank::kFineStepFarad, LcTank::kCoarseStepFarad);
}

TEST(LcTank, QEnhancementReachesOscillation) {
  const LcTank tank(sim::ProcessVariation::nominal());
  EXPECT_FALSE(tank.oscillates(0));
  EXPECT_TRUE(tank.oscillates(63));
  // Threshold is monotone: once oscillating, stays oscillating.
  bool seen = false;
  for (std::uint32_t q = 0; q <= 63; ++q) {
    if (tank.oscillates(q)) seen = true;
    if (seen) EXPECT_TRUE(tank.oscillates(q)) << "q " << q;
  }
}

TEST(LcTank, PoleRadiusCrossesUnityAtThreshold) {
  const LcTank tank(sim::ProcessVariation::nominal());
  for (std::uint32_t q = 0; q <= 63; ++q) {
    const double r = tank.pole_radius(9, 128, q, 12.0e9);
    if (tank.oscillates(q)) {
      EXPECT_GE(r, 1.0) << "q " << q;
    } else {
      EXPECT_LT(r, 1.0) << "q " << q;
    }
  }
}

TEST(LcTank, PoleAngleMatchesResonance) {
  const LcTank tank(sim::ProcessVariation::nominal());
  const double fs = 12.0e9;
  const double f = tank.resonance_hz(9, 128);
  EXPECT_NEAR(tank.pole_angle(9, 128, fs),
              2.0 * std::numbers::pi * f / fs, 1e-9);
}

TEST(LcTank, ProcessVariationShiftsResonance) {
  sim::ProcessVariation pv;
  pv.tank_c_rel = 0.05;
  const LcTank fast(sim::ProcessVariation::nominal());
  const LcTank slow(pv);
  EXPECT_GT(fast.resonance_hz(9, 128), slow.resonance_hz(9, 128));
}

TEST(Resonator, RingsAtConfiguredFrequency) {
  Resonator res;
  const double theta = std::numbers::pi / 2.0;
  res.configure(theta, 0.999);
  // Impulse, then count zero crossings of the ring-down.
  res.step(1.0);
  int crossings = 0;
  double prev = res.state();
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    res.step(0.0);
    if (prev < 0.0 && res.state() >= 0.0) ++crossings;
    prev = res.state();
  }
  const double freq = static_cast<double>(crossings) / n;  // cycles/sample
  EXPECT_NEAR(freq, theta / (2.0 * std::numbers::pi), 0.01);
}

TEST(Resonator, DecaysWhenStable) {
  Resonator res;
  res.configure(std::numbers::pi / 2.0, 0.98);
  res.step(1.0);
  for (int i = 0; i < 2000; ++i) res.step(0.0);
  EXPECT_LT(std::abs(res.state()), 1e-8);
}

TEST(Resonator, GrowsFromNoiseWhenUnstable) {
  Resonator res;
  res.configure(std::numbers::pi / 2.0, 1.05);
  res.step(1e-3);
  double peak = 0.0;
  for (int i = 0; i < 4000; ++i) {
    res.step(0.0);
    peak = std::max(peak, std::abs(res.state()));
  }
  EXPECT_GT(peak, 1.0);
  EXPECT_LE(peak, Resonator::kStateRail + 1e-9);
}

TEST(Resonator, OscillationAmplitudeStabilizesBelowRail) {
  // The -Gm saturation (AGC) must settle the limit cycle between the knee
  // and the rail, not slam the rail.
  Resonator res;
  res.configure(std::numbers::pi / 2.0, 1.17);
  res.step(1e-3);
  for (int i = 0; i < 8000; ++i) res.step(0.0);
  double peak = 0.0;
  for (int i = 0; i < 1000; ++i) {
    res.step(0.0);
    peak = std::max(peak, std::abs(res.state()));
  }
  EXPECT_GT(peak, Resonator::kAgcKnee);
  EXPECT_LT(peak, Resonator::kStateRail);
}

TEST(Resonator, LinearBelowKnee) {
  // Small-signal behavior must be exactly linear (no AGC, no soft rail):
  // doubling the input doubles the state trajectory.
  Resonator a;
  Resonator b;
  a.configure(1.3, 0.995);
  b.configure(1.3, 0.995);
  double max_err = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double x = 0.01 * std::sin(0.7 * i);
    const double sa = a.step(x);
    const double sb = b.step(2.0 * x);
    max_err = std::max(max_err, std::abs(sb - 2.0 * sa));
  }
  EXPECT_LT(max_err, 1e-12);
}

TEST(Resonator, ResetClearsState) {
  Resonator res;
  res.configure(1.0, 0.99);
  res.step(1.0);
  res.reset();
  EXPECT_EQ(res.state(), 0.0);
  res.step(0.0);
  EXPECT_EQ(res.state(), 0.0);
}

TEST(SoftRail, LinearBelowKneeExactly) {
  for (double x : {-3.9, -1.0, 0.0, 2.5, 3.99}) {
    EXPECT_DOUBLE_EQ(rf::soft_rail(x, 8.0), x);
  }
}

TEST(SoftRail, BoundedAndMonotone) {
  double prev = -1e9;
  for (double x = -30.0; x <= 30.0; x += 0.1) {
    const double y = rf::soft_rail(x, 8.0);
    EXPECT_LE(std::abs(y), 8.0);
    EXPECT_GE(y, prev - 1e-12);
    prev = y;
  }
}

TEST(SoftRail, OddSymmetry) {
  for (double x : {0.5, 3.0, 6.0, 20.0}) {
    EXPECT_DOUBLE_EQ(rf::soft_rail(-x, 8.0), -rf::soft_rail(x, 8.0));
  }
}

}  // namespace
