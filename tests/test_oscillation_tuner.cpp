// Unit tests for calibration steps 5-6 (oscillation-mode tank tuning).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "calib/oscillation_tuner.h"
#include "rf/standards.h"
#include "sim/process.h"
#include "sim/rng.h"

namespace {

using namespace analock;
using calib::measure_frequency;
using calib::OscillationTuner;

TEST(FrequencyCounter, PureToneMeasured) {
  const double fs = 1.0e6;
  const double f = 123456.0;
  std::vector<double> x(32768);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * f * static_cast<double>(i) / fs);
  }
  const auto m = measure_frequency(x, fs);
  EXPECT_NEAR(m.freq_hz, f, fs / 16384.0);
  EXPECT_NEAR(m.rms, 1.0 / std::sqrt(2.0), 0.01);
}

TEST(FrequencyCounter, HysteresisRejectsNoiseChatter) {
  // Noise riding on a slow sine must not double-count crossings.
  sim::Rng rng(3);
  const double fs = 1.0e6;
  const double f = 5000.0;
  std::vector<double> x(65536);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * f * static_cast<double>(i) / fs) +
           rng.gaussian(0.0, 0.02);
  }
  const auto m = measure_frequency(x, fs, 0.05);
  EXPECT_NEAR(m.freq_hz, f, f * 0.01);
}

TEST(FrequencyCounter, SilenceReportsZero) {
  std::vector<double> x(1024, 0.0);
  const auto m = measure_frequency(x, 1.0e6);
  EXPECT_EQ(m.freq_hz, 0.0);
  EXPECT_EQ(m.rms, 0.0);
}

TEST(FrequencyCounter, SquareWaveMeasured) {
  const double fs = 1.0e6;
  std::vector<double> x(16384);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = (i / 10) % 2 == 0 ? 1.0 : -1.0;  // period 20 samples
  }
  const auto m = measure_frequency(x, fs);
  EXPECT_NEAR(m.freq_hz, fs / 20.0, fs / 20.0 * 0.01);
}

TEST(OscillationModeConfig, MatchesPaperSteps) {
  const auto cfg = calib::oscillation_mode_config(10, 20);
  EXPECT_FALSE(cfg.comp_clock_enable);  // step 1
  EXPECT_TRUE(cfg.buffer_in_path);      // step 2
  EXPECT_FALSE(cfg.gmin_enable);        // step 3
  EXPECT_FALSE(cfg.feedback_enable);    // step 4
  EXPECT_EQ(cfg.q_enh, 63u);            // step 5
  EXPECT_EQ(cfg.cap_coarse, 10u);
  EXPECT_EQ(cfg.cap_fine, 20u);
}

class OscillationTunerChipTest : public ::testing::TestWithParam<int> {};

TEST_P(OscillationTunerChipTest, ConvergesOnMonteCarloChip) {
  sim::Rng master(4242);
  const auto pv = sim::ProcessVariation::monte_carlo(
      master, static_cast<std::uint64_t>(GetParam()));
  rf::Receiver chip(rf::standard_max_3ghz(), pv,
                    master.fork("chip", static_cast<std::uint64_t>(GetParam())));
  OscillationTuner tuner(chip);
  const auto result = tuner.tune(3.0e9);
  EXPECT_TRUE(result.converged) << "chip " << GetParam();
  EXPECT_NEAR(result.achieved_hz, 3.0e9, 3.0e9 / 100.0);
  EXPECT_LT(result.measurements, 60u);
}

INSTANTIATE_TEST_SUITE_P(Chips, OscillationTunerChipTest,
                         ::testing::Values(0, 1, 2, 7));

TEST(OscillationTuner, MeasureReportsOscillationAtMaxQ) {
  sim::Rng master(4242);
  rf::Receiver chip(rf::standard_max_3ghz(),
                    sim::ProcessVariation::nominal(), master);
  OscillationTuner tuner(chip);
  const auto m = tuner.measure(9, 128);
  EXPECT_GT(m.rms, 0.3);
  EXPECT_GT(m.freq_hz, 2.0e9);
  EXPECT_LT(m.freq_hz, 4.0e9);
}

TEST(OscillationTuner, GentleOverdriveDiscriminatesFineCodes) {
  sim::Rng master(4242);
  rf::Receiver chip(rf::standard_max_3ghz(),
                    sim::ProcessVariation::nominal(), master);
  OscillationTuner tuner(chip);
  const auto lo = tuner.measure_at_q(9, 32, 28, 32768);
  const auto hi = tuner.measure_at_q(9, 224, 28, 32768);
  ASSERT_GT(lo.rms, 0.3);
  ASSERT_GT(hi.rms, 0.3);
  // More fine capacitance -> lower frequency, and the difference of 192
  // fine LSBs (~18 MHz at 3 GHz) must be resolved.
  EXPECT_GT(lo.freq_hz - hi.freq_hz, 5.0e6);
}

TEST(OscillationTuner, LowFrequencyStandardAlsoTunes) {
  sim::Rng master(4242);
  const auto pv = sim::ProcessVariation::monte_carlo(master, 3);
  rf::Receiver chip(rf::standard_low_1p5ghz(), pv, master.fork("chip", 3));
  OscillationTuner tuner(chip);
  const auto result = tuner.tune(1.5e9);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.achieved_hz, 1.5e9, 1.5e9 / 100.0);
}

}  // namespace
