// Unit tests for the attack cost model (paper Section VI.B.1 numbers).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "attack/cost_model.h"

namespace {

using namespace analock::attack;

TEST(CostModel, PaperSimulationTimes) {
  AttackCost cost;
  cost.snr_trials = 3;    // 3 x 20 min = 1 h
  cost.sweep_trials = 2;  // 2 x 3 h  = 6 h
  cost.sfdr_trials = 4;   // 4 x 30 min = 2 h
  EXPECT_NEAR(cost.simulation_hours(), 9.0, 1e-9);
}

TEST(CostModel, HardwareTrialsAreFast) {
  AttackCost cost;
  cost.snr_trials = 1000;
  EXPECT_NEAR(cost.hardware_seconds(), 10.0, 1e-9);
}

TEST(CostModel, AccumulationOperator) {
  AttackCost a;
  a.snr_trials = 5;
  AttackCost b;
  b.snr_trials = 7;
  b.sfdr_trials = 2;
  a += b;
  EXPECT_EQ(a.snr_trials, 12u);
  EXPECT_EQ(a.sfdr_trials, 2u);
}

TEST(CostModel, ExpectedTrialsGeometric) {
  EXPECT_NEAR(expected_trials(64, 1e-6), 1e6, 1.0);
  EXPECT_NEAR(expected_trials(64, 0.5), 2.0, 1e-9);
}

TEST(CostModel, ExpectedTrialsCappedByKeyspace) {
  // Success fraction so small that 1/p exceeds 2^16.
  EXPECT_NEAR(expected_trials(16, 1e-9), 65536.0, 1.0);
}

TEST(CostModel, ZeroFractionIsInfinite) {
  EXPECT_TRUE(std::isinf(expected_trials(64, 0.0)));
}

TEST(CostModel, SimulationBruteForceIsAstronomical) {
  // Even a generous 2^-40 success fraction means ~2^40 trials at 20 min
  // each: the paper's "impractical due to very long analog simulation
  // times" in numbers.
  const double trials = expected_trials(64, std::pow(2.0, -40.0));
  EXPECT_GT(simulation_years(trials), 1.0e7);
}

TEST(CostModel, HardwareBruteForceStillYears) {
  const double trials = expected_trials(64, std::pow(2.0, -40.0));
  EXPECT_GT(hardware_years(trials), 100.0);
}

TEST(CostModel, RefabOverheadIsPresent) {
  const TrialCosts costs;
  EXPECT_GT(costs.refab_weeks, 0.0);
  EXPECT_GT(costs.refab_usd, 0.0);
}

}  // namespace
