// Tests for the profiling layer (src/obs/prof/): counter open/fallback,
// harness statistics on known inputs, span-tree folding, and the
// BENCH_*.json document structure.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/prof/prof.h"

namespace {

using namespace analock;

// The harness reads its environment once (prof::bench_env is a
// singleton), so pin every knob before the first test touches it:
// deterministic rep counts, no artifacts dropped into the test cwd, and
// the chrono fallback so results do not depend on PMU availability.
const bool kEnvPinned = [] {
  setenv("ANALOCK_BENCH_JSON", "0", 1);
  setenv("ANALOCK_BENCH_REPS", "3", 1);
  setenv("ANALOCK_BENCH_WARMUP", "0", 1);
  setenv("ANALOCK_BENCH_TRIALS", "2", 1);
  setenv("ANALOCK_PERF", "0", 1);
  return true;
}();

// ----------------------------------------------------------- statistics

TEST(ProfStats, KnownSamplesOddCount) {
  const prof::Stats s = prof::compute_stats({4.0, 1.0, 100.0, 3.0, 2.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  // deviations from 3: {2,1,97,0,1} -> sorted {0,1,1,2,97} -> MAD 1.
  EXPECT_DOUBLE_EQ(s.mad, 1.0);
  // nearest-rank p95 of 5 samples is the maximum.
  EXPECT_DOUBLE_EQ(s.p95, 100.0);
}

TEST(ProfStats, KnownSamplesEvenCount) {
  const prof::Stats s = prof::compute_stats({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  // deviations from 2.5: {1.5,0.5,0.5,1.5} -> MAD (0.5+1.5)/2 = 1.
  EXPECT_DOUBLE_EQ(s.mad, 1.0);
  EXPECT_DOUBLE_EQ(s.p95, 4.0);
}

TEST(ProfStats, EmptyAndSingleton) {
  EXPECT_EQ(prof::compute_stats({}).n, 0u);
  const prof::Stats s = prof::compute_stats({7.5});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.median, 7.5);
  EXPECT_DOUBLE_EQ(s.mad, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 7.5);
}

// ----------------------------------------------------------- environment

TEST(ProfEnv, TrialsBudgetHonorsPinnedEnvironment) {
  ASSERT_TRUE(kEnvPinned);
  EXPECT_EQ(prof::trials_budget(100), 2u);
  EXPECT_EQ(prof::trials_budget(7), 2u);
  EXPECT_EQ(prof::bench_env().reps_override, 3);
  EXPECT_TRUE(prof::bench_env().force_chrono);
  EXPECT_TRUE(prof::bench_env().json_disabled);
}

// -------------------------------------------------------------- counters

TEST(ProfCounters, ForcedChronoFallback) {
  const prof::PerfCounters pc(/*force_chrono=*/true);
  EXPECT_EQ(pc.mode(), prof::CounterMode::kChrono);
  EXPECT_FALSE(pc.hardware());
  EXPECT_FALSE(pc.degrade_reason().empty());
  EXPECT_STREQ(prof::to_string(pc.mode()), "chrono");

  const prof::CounterValues a = pc.read();
  const prof::CounterValues b = pc.read();
  EXPECT_GE(b.wall_ns, a.wall_ns);
  EXPECT_EQ(a.cycles, 0u);
  EXPECT_EQ(a.task_clock_ns, 0u);
}

TEST(ProfCounters, BestAvailableModeIsCoherent) {
  const prof::PerfCounters pc;  // whatever the environment allows
  if (pc.mode() == prof::CounterMode::kHardware) {
    EXPECT_TRUE(pc.degrade_reason().empty());
  } else {
    EXPECT_FALSE(pc.degrade_reason().empty());
  }
  // Burn a few instructions between two reads; whatever was measured
  // must be non-negative and wall time must advance monotonically.
  const prof::CounterValues a = pc.read();
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) sink += i;
  prof::do_not_optimize(sink);
  const prof::CounterValues d = pc.read() - a;
  EXPECT_GE(d.wall_ns, 0.0);
  if (pc.hardware()) {
    EXPECT_GT(d.instructions, 0u);
  }
}

TEST(ProfCounters, SectionDeltaAndArithmetic) {
  const prof::PerfCounters pc(/*force_chrono=*/true);
  const prof::CounterSection section(pc);
  const prof::CounterValues d = section.delta();
  EXPECT_GE(d.wall_ns, 0.0);

  prof::CounterValues x;
  x.cycles = 10;
  x.instructions = 30;
  prof::CounterValues y;
  y.cycles = 4;
  y.instructions = 10;
  const prof::CounterValues sum = x + y;
  EXPECT_EQ(sum.cycles, 14u);
  const prof::CounterValues diff = x - y;
  EXPECT_EQ(diff.cycles, 6u);
  EXPECT_DOUBLE_EQ(x.ipc(), 3.0);
  EXPECT_DOUBLE_EQ(prof::CounterValues{}.ipc(), 0.0);
}

// ---------------------------------------------------------- span folding

class ProfSpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry& reg = obs::registry();
    reg.set_enabled(true);
    reg.set_clock(&clock_);
  }

  void TearDown() override {
    prof::SpanProfiler::detach();
    obs::Registry& reg = obs::registry();
    reg.set_clock(nullptr);
    reg.set_enabled(false);
  }

  obs::FakeClock clock_{100};  // each reading advances 100 ns
};

TEST_F(ProfSpanTest, FoldsNestedSpansWithSelfVsTotal) {
  prof::SpanProfiler profiler;
  profiler.attach();
  ASSERT_EQ(prof::SpanProfiler::current(), &profiler);

  for (int i = 0; i < 2; ++i) {
    ANALOCK_SPAN("prof.outer");
    clock_.advance_ns(1000);
    {
      ANALOCK_SPAN("prof.inner");
      clock_.advance_ns(5000);
    }
    clock_.advance_ns(1000);
  }
  prof::SpanProfiler::detach();
  EXPECT_EQ(prof::SpanProfiler::current(), nullptr);

  const auto nodes = profiler.nodes();
  ASSERT_EQ(nodes.size(), 2u);
  const auto& outer = nodes[0];
  const auto& inner = nodes[1];
  EXPECT_EQ(outer.path, "prof.outer");
  EXPECT_EQ(outer.name, "prof.outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(outer.calls, 2u);
  EXPECT_EQ(inner.path, "prof.outer;prof.inner");
  EXPECT_EQ(inner.name, "prof.inner");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.calls, 2u);

  // A leaf's self time is its total; the parent's self time excludes the
  // child's total but keeps its own two 1000 ns phases (plus the fixed
  // clock readings, which the FakeClock auto-tick makes deterministic).
  EXPECT_DOUBLE_EQ(inner.self_ns, inner.total_ns);
  EXPECT_GT(inner.total_ns, 2 * 5000.0 - 1.0);
  EXPECT_GT(outer.total_ns, inner.total_ns);
  EXPECT_DOUBLE_EQ(outer.self_ns, outer.total_ns - inner.total_ns);

  const std::string folded = profiler.folded_stacks();
  EXPECT_NE(folded.find("prof.outer "), std::string::npos);
  EXPECT_NE(folded.find("prof.outer;prof.inner "), std::string::npos);
}

TEST_F(ProfSpanTest, DetachedProfilerRecordsNothing) {
  prof::SpanProfiler profiler;
  {
    ANALOCK_SPAN("prof.unattached");
    clock_.advance_ns(500);
  }
  EXPECT_TRUE(profiler.nodes().empty());
  EXPECT_TRUE(profiler.folded_stacks().empty());
}

TEST_F(ProfSpanTest, ResetDropsAggregatedNodes) {
  prof::SpanProfiler profiler;
  profiler.attach();
  { ANALOCK_SPAN("prof.reset"); }
  prof::SpanProfiler::detach();
  EXPECT_EQ(profiler.nodes().size(), 1u);
  profiler.reset();
  EXPECT_TRUE(profiler.nodes().empty());
}

// --------------------------------------------------------------- harness

class ProfHarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(kEnvPinned);
    obs::Registry& reg = obs::registry();
    reg.set_enabled(true);
    reg.set_clock(&clock_);
  }

  void TearDown() override {
    obs::Registry& reg = obs::registry();
    reg.set_clock(nullptr);
    reg.set_enabled(false);
  }

  // 1 ms per clock reading: a rep's wall delta is exactly one tick.
  obs::FakeClock clock_{1000000};
};

TEST_F(ProfHarnessTest, RunsPinnedRepsWithDeterministicStats) {
  prof::Harness h("test_prof_harness");
  int calls = 0;
  prof::CaseOptions opts;
  opts.ops_per_rep = 10.0;
  h.add_case("counted", [&calls] { ++calls; }, opts);
  EXPECT_EQ(h.run(), 0);

  // ANALOCK_BENCH_REPS=3 pins the adaptive loop to exactly three reps.
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(h.results().size(), 1u);
  const prof::CaseResult& r = h.results()[0];
  EXPECT_EQ(r.name, "counted");
  EXPECT_EQ(r.warmups, 0);
  ASSERT_EQ(r.reps.size(), 3u);
  for (std::size_t i = 1; i < r.reps.size(); ++i) {
    EXPECT_GT(r.reps[i].t_ns, r.reps[i - 1].t_ns);
  }
  // Each rep spans one CounterSection reading pair = one 1 ms tick.
  EXPECT_DOUBLE_EQ(r.wall_ms.median, 1.0);
  EXPECT_DOUBLE_EQ(r.wall_ms.mad, 0.0);
  EXPECT_EQ(r.wall_ms.n, 3u);
}

TEST_F(ProfHarnessTest, WarmupOptionOverridesEnvAndSkipsProfile) {
  prof::Harness h("test_prof_warmup");
  int calls = 0;
  prof::CaseOptions opts;
  opts.warmup = 2;
  h.add_case("warm", [&calls] { ++calls; }, opts);
  EXPECT_EQ(h.run(), 0);
  EXPECT_EQ(calls, 2 + 3);  // two warmups + three measured reps
  EXPECT_EQ(h.results()[0].warmups, 2);
}

TEST_F(ProfHarnessTest, JsonDocumentStructure) {
  prof::Harness h("test_prof_json");
  prof::CaseOptions opts;
  opts.notes.emplace_back("paper_minutes", 20.0);
  h.add_case("spanning", [] {
    ANALOCK_SPAN("prof.case");
    { ANALOCK_SPAN("prof.case.sub"); }
  }, opts);
  EXPECT_EQ(h.run(), 0);

  const std::string json = h.json();
  EXPECT_NE(json.find("\"schema\":\"analock-bench\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"test_prof_json\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"spanning\""), std::string::npos);
  EXPECT_NE(json.find("\"counter_mode\":\"chrono\""), std::string::npos);
  EXPECT_NE(json.find("\"trials_budget\":2"), std::string::npos);
  EXPECT_NE(json.find("\"notes\":{\"paper_minutes\":20}"),
            std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\":{\"n\":3"), std::string::npos);
  // Chrono mode: per-case counters stay an empty object and the profile
  // spans carry timing only.
  EXPECT_NE(json.find("\"counters\":{}"), std::string::npos);
  EXPECT_EQ(json.find("\"self_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"prof.case;prof.case.sub\""),
            std::string::npos);

  const std::string folded = h.folded();
  EXPECT_NE(folded.find("prof.case;prof.case.sub "), std::string::npos);
}

}  // namespace
