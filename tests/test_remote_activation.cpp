// Unit tests for the EPIC-style remote activation scheme (Sec. IV.B.4).
#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/fault_injector.h"
#include "lock/locked_receiver.h"
#include "lock/remote_activation.h"
#include "rf/standards.h"
#include "sim/rng.h"

namespace {

using namespace analock;
using namespace analock::lock;

TEST(ModMath, ModPowKnownValues) {
  EXPECT_EQ(mod_pow(2, 10, 1000), 24u);  // 1024 mod 1000
  EXPECT_EQ(mod_pow(3, 0, 7), 1u);
  EXPECT_EQ(mod_pow(7, 13, 11), mod_pow(7, 13 % 10, 11));  // Fermat
}

TEST(ModMath, ModPowLargeOperands) {
  // 128-bit intermediates: (2^31)^2 mod (2^62 - 57) must not overflow.
  const std::uint64_t m = (1ull << 62) - 57;
  const std::uint64_t r = mod_pow(1ull << 31, 2, m);
  EXPECT_EQ(r, (1ull << 62) % m);
}

TEST(Primality, SmallKnownValues) {
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(97));
  EXPECT_TRUE(is_prime_u64(2147483647));  // 2^31 - 1, Mersenne
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_FALSE(is_prime_u64(561));   // Carmichael
  EXPECT_FALSE(is_prime_u64(25326001));  // strong pseudoprime to 2,3,5
}

TEST(Primality, NextPrime) {
  EXPECT_EQ(next_prime_u64(14), 17u);
  EXPECT_EQ(next_prime_u64(17), 17u);
  EXPECT_TRUE(is_prime_u64(next_prime_u64(1ull << 31)));
}

TEST(Primality, NextPrimeEnforcesHeadroomPrecondition) {
  // The documented precondition "n must leave headroom below 2^63" is an
  // explicit check, not silent wraparound in the search loop.
  EXPECT_THROW((void)next_prime_u64(1ull << 63), std::overflow_error);
  EXPECT_THROW((void)next_prime_u64(~0ull), std::overflow_error);
  // Just under the limit still works.
  EXPECT_TRUE(is_prime_u64(next_prime_u64((1ull << 63) - 1024)));
}

TEST(Rsa, DeriveIsDeterministic) {
  const auto a = RsaKeyPair::derive(12345);
  const auto b = RsaKeyPair::derive(12345);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.d, b.d);
}

TEST(Rsa, DifferentSeedsDifferentModuli) {
  EXPECT_NE(RsaKeyPair::derive(1).n, RsaKeyPair::derive(2).n);
}

TEST(Rsa, EncryptDecryptRoundTrip) {
  const auto kp = RsaKeyPair::derive(99);
  for (std::uint64_t m : {0ull, 1ull, 0xDEADBEEFull, 0xFFFFFFFFFFull}) {
    const std::uint64_t c = mod_pow(m, kp.e, kp.n);
    EXPECT_EQ(mod_pow(c, kp.d, kp.n), m) << "message " << m;
  }
}

TEST(RemoteActivation, WrapInstallLoad) {
  ArbiterPuf puf(sim::Rng(42));
  RemoteActivationChip chip(puf, 2);
  const Key64 config{0x1e2bb271ed7d914bull};
  const auto wrapped = wrap_key(config, chip.public_key());
  ASSERT_TRUE(chip.install_wrapped_key(0, wrapped));
  const auto loaded = chip.load(0);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, config);
}

TEST(RemoteActivation, CiphertextDiffersFromKey) {
  ArbiterPuf puf(sim::Rng(42));
  RemoteActivationChip chip(puf, 1);
  const Key64 config{0x1234567890ABCDEFull};
  const auto wrapped = wrap_key(config, chip.public_key());
  EXPECT_NE(wrapped.c_lo, config.bits() & 0xFFFFFFFFull);
  EXPECT_NE(wrapped.c_hi, config.bits() >> 32);
}

TEST(RemoteActivation, WrongChipRejectsCiphertext) {
  // A ciphertext wrapped for chip A fails the framing check on chip B —
  // the untrusted facility cannot divert activations to overproduced
  // dies.
  ArbiterPuf puf_a(sim::Rng(42));
  ArbiterPuf puf_b(sim::Rng(43));
  RemoteActivationChip chip_a(puf_a, 1);
  RemoteActivationChip chip_b(puf_b, 1);
  const Key64 config{0xCAFEBABE12345678ull};
  const auto for_a = wrap_key(config, chip_a.public_key());
  EXPECT_FALSE(chip_b.install_wrapped_key(0, for_a));
  EXPECT_FALSE(chip_b.load(0).has_value());
}

TEST(RemoteActivation, KeyPairStableAcrossPowerOns) {
  // The pair is re-derived from the PUF; two instances of the same die
  // expose the same public key.
  ArbiterPuf puf1(sim::Rng(7));
  ArbiterPuf puf2(sim::Rng(7));
  RemoteActivationChip boot1(puf1, 1);
  RemoteActivationChip boot2(puf2, 1);
  EXPECT_EQ(boot1.public_key().n, boot2.public_key().n);
}

TEST(RemoteActivation, CorruptedCiphertextRejected) {
  // Either half of the ciphertext failing its framing check rejects the
  // whole activation — a channel bit-flip cannot install a partial key.
  ArbiterPuf puf(sim::Rng(42));
  RemoteActivationChip chip(puf, 1);
  auto lo_hit = wrap_key(Key64{123}, chip.public_key());
  lo_hit.c_lo ^= 1;
  EXPECT_FALSE(chip.install_wrapped_key(0, lo_hit));
  auto hi_hit = wrap_key(Key64{123}, chip.public_key());
  hi_hit.c_hi ^= 1ull << 17;
  EXPECT_FALSE(chip.install_wrapped_key(0, hi_hit));
  EXPECT_FALSE(chip.load(0).has_value());
}

TEST(RemoteActivation, ReplayIntoProvisionedSlotRejected) {
  // One activation per slot: replaying a captured ciphertext (even the
  // original, valid one) against an already-provisioned slot fails and
  // leaves the installed key untouched.
  ArbiterPuf puf(sim::Rng(42));
  RemoteActivationChip chip(puf, 1);
  const Key64 config{0x1e2bb271ed7d914bull};
  const auto wrapped = wrap_key(config, chip.public_key());
  ASSERT_TRUE(chip.install_wrapped_key(0, wrapped));
  EXPECT_FALSE(chip.install_wrapped_key(0, wrapped));
  const auto other = wrap_key(Key64{0x5555AAAA5555AAAAull}, chip.public_key());
  EXPECT_FALSE(chip.install_wrapped_key(0, other));
  EXPECT_EQ(*chip.load(0), config);
}

TEST(RemoteActivation, OutOfRangeSlotRejected) {
  ArbiterPuf puf(sim::Rng(42));
  RemoteActivationChip chip(puf, 2);
  const auto wrapped = wrap_key(Key64{123}, chip.public_key());
  EXPECT_FALSE(chip.install_wrapped_key(2, wrapped));
  EXPECT_FALSE(chip.install_wrapped_key(99, wrapped));
  EXPECT_FALSE(chip.load(2).has_value());
  EXPECT_FALSE(chip.load(99).has_value());
}

TEST(RemoteActivation, PowersOnALockedReceiver) {
  ArbiterPuf puf(sim::Rng(42));
  RemoteActivationChip scheme(puf, 1);
  const Key64 config{0x1e2bb271ed7d914bull};
  ASSERT_TRUE(
      scheme.install_wrapped_key(0, wrap_key(config, scheme.public_key())));
  LockedReceiver rx(rf::standard_max_3ghz(),
                    sim::ProcessVariation::nominal(), sim::Rng(1));
  EXPECT_TRUE(rx.power_on(scheme, 0));
  EXPECT_EQ(*rx.active_key(), config);
}

TEST(RemoteActivation, ProvisionPathEquivalentToWrapInstall) {
  ArbiterPuf puf(sim::Rng(42));
  RemoteActivationChip chip(puf, 1);
  const Key64 config{0xABCDEF0123456789ull};
  chip.provision(0, config);
  EXPECT_EQ(*chip.load(0), config);
}

}  // namespace
