// Scratch diagnostic: warm-start attack from donor chip 0 onto victim 1.
#include <cstdio>

#include "attack/warm_start.h"
#include "calib/calibrator.h"
#include "lock/evaluator.h"
#include "lock/key_layout.h"
#include "rf/standards.h"
#include "sim/process.h"
#include "sim/rng.h"

using namespace analock;
using L = lock::KeyLayout;

int main() {
  const rf::Standard& mode = rf::standard_max_3ghz();
  sim::Rng master(20260704);
  auto pv0 = sim::ProcessVariation::monte_carlo(master, 0);
  auto pv1 = sim::ProcessVariation::monte_carlo(master, 1);
  calib::Calibrator c0(mode, pv0, master.fork("chip", 0));
  calib::Calibrator c1(mode, pv1, master.fork("chip", 1));
  const auto cal0 = c0.run();
  const auto cal1 = c1.run();
  auto dump = [&](const char* name, const lock::Key64& k) {
    const auto c = lock::decode_key(k);
    std::printf("%s: caps=(%u,%u) q=%u gm=%u dac=%u pre=%u cmp=%u dly=%u vg=%u\n",
                name, c.modulator.cap_coarse, c.modulator.cap_fine,
                c.modulator.q_enh, c.modulator.gmin_bias,
                c.modulator.dac_bias, c.modulator.preamp_bias,
                c.modulator.comp_bias, c.modulator.loop_delay, c.vglna_gain);
  };
  dump("donor (chip0)", cal0.key);
  dump("victim(chip1)", cal1.key);

  lock::LockEvaluator ev(mode, pv1, master.fork("chip", 1));
  std::printf("victim own key : rx=%.1f sfdr=%.1f\n",
              ev.snr_receiver_db(cal1.key), ev.sfdr_db(cal1.key));
  std::printf("donor key as-is: mod=%.1f rx=%.1f\n",
              ev.snr_modulator_db(cal0.key), ev.snr_receiver_db(cal0.key));

  attack::WarmStartAttack ws(ev, sim::Rng(3000));
  attack::WarmStartOptions options;
  options.max_trials = 1200;
  const auto r = ws.run(cal0.key, options);
  dump("refined", r.best_key);
  std::printf("warm start: start=%.1f refined=%.1f rx=%.1f sfdr=%.1f "
              "success=%d trials=%llu moved=%u\n",
              r.start_snr_db, r.best_screen_snr_db, r.receiver_snr_db,
              r.sfdr_db, r.success, (unsigned long long)r.trials,
              r.hamming_moved);
  return 0;
}
