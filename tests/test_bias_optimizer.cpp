// Unit tests for calibration steps 11-14 (bias optimization).
#include <gtest/gtest.h>

#include "calib/bias_optimizer.h"
#include "lock/key_layout.h"
#include "rf/standards.h"
#include "sim/process.h"
#include "sim/rng.h"

namespace {

using namespace analock;
using calib::BiasOptimizer;

/// A configuration with the tank already tuned (nominal chip) but biases
/// deliberately off.
rf::ReceiverConfig detuned_bias_config() {
  rf::ReceiverConfig cfg;
  cfg.vglna_gain = 10;
  cfg.modulator.cap_coarse = 19;  // analytic tank tuning, nominal chip
  cfg.modulator.cap_fine = 102;
  cfg.modulator.q_enh = 21;
  cfg.modulator.gmin_bias = 10;
  cfg.modulator.dac_bias = 55;
  cfg.modulator.preamp_bias = 5;
  cfg.modulator.comp_bias = 60;
  cfg.modulator.loop_delay = 2;
  return cfg;
}

TEST(BiasOptimizer, ImprovesDetunedConfiguration) {
  const auto pv = sim::ProcessVariation::nominal();
  BiasOptimizer opt(rf::standard_max_3ghz(), pv, sim::Rng(60));
  const auto start = detuned_bias_config();
  const double snr_before = opt.measure_snr(start);
  const auto improved = opt.optimize(start);
  const double snr_after = opt.measure_snr(improved);
  EXPECT_GT(snr_after, snr_before + 5.0);
  EXPECT_GT(snr_after, 40.0);
}

TEST(BiasOptimizer, LeavesTankCodesAlone) {
  const auto pv = sim::ProcessVariation::nominal();
  BiasOptimizer opt(rf::standard_max_3ghz(), pv, sim::Rng(60));
  const auto start = detuned_bias_config();
  const auto improved = opt.optimize(start);
  EXPECT_EQ(improved.modulator.cap_coarse, start.modulator.cap_coarse);
  EXPECT_EQ(improved.modulator.cap_fine, start.modulator.cap_fine);
  EXPECT_EQ(improved.modulator.q_enh, start.modulator.q_enh);
  EXPECT_EQ(improved.vglna_gain, start.vglna_gain);
}

TEST(BiasOptimizer, FindsLoopDelayNearDesignPoint) {
  const auto pv = sim::ProcessVariation::nominal();
  BiasOptimizer opt(rf::standard_max_3ghz(), pv, sim::Rng(60));
  const auto improved = opt.optimize(detuned_bias_config());
  // Design point: parasitic 0.35 + code/15 + 1 structural = 2.0 samples
  // -> code ~ 9.75. SNR is flat within ~2 codes of it.
  EXPECT_GE(improved.modulator.loop_delay, 4u);
  EXPECT_LE(improved.modulator.loop_delay, 15u);
}

TEST(BiasOptimizer, MeasurementCountIsBudgeted) {
  const auto pv = sim::ProcessVariation::nominal();
  BiasOptimizer::Options options;
  options.passes = 1;
  BiasOptimizer opt(rf::standard_max_3ghz(), pv, sim::Rng(60), options);
  (void)opt.optimize(detuned_bias_config());
  // 5 fields x (coarse ~9 + refine ~2*step) plus SFDR-gated second
  // measurements: generously under 400.
  EXPECT_LT(opt.measurements(), 400u);
  EXPECT_GT(opt.measurements(), 30u);
}

TEST(BiasOptimizer, ScoreGatesSfdrWhenSnrIsFarOff) {
  const auto pv = sim::ProcessVariation::nominal();
  BiasOptimizer opt(rf::standard_max_3ghz(), pv, sim::Rng(60));
  // A hopeless config (loop open): score == snr margin, well below zero.
  rf::ReceiverConfig broken = detuned_bias_config();
  broken.modulator.feedback_enable = false;
  broken.modulator.comp_clock_enable = false;
  broken.modulator.gmin_enable = false;
  const double score = opt.score(broken);
  EXPECT_LT(score, -40.0);
}

TEST(BiasOptimizer, OptimizedConfigMeetsSfdrSpec) {
  const auto pv = sim::ProcessVariation::nominal();
  BiasOptimizer opt(rf::standard_max_3ghz(), pv, sim::Rng(60));
  const auto improved = opt.optimize(detuned_bias_config());
  EXPECT_GT(opt.measure_sfdr(improved), 38.0);
}

TEST(BiasOptimizer, SnrAtMeasuresRequestedPower) {
  const auto pv = sim::ProcessVariation::nominal();
  BiasOptimizer opt(rf::standard_max_3ghz(), pv, sim::Rng(60));
  const auto cfg = opt.optimize(detuned_bias_config());
  const double lo = opt.measure_snr_at(cfg, -45.0);
  const double hi = opt.measure_snr_at(cfg, -25.0);
  EXPECT_GT(hi, lo + 10.0);
}

}  // namespace
