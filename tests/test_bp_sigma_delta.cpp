// Behavioral checks of the BP RF sigma-delta modulator: the nominal
// configuration must deliver the paper's >40 dB SNR, the oscillation mode
// must behave as calibration expects, and the characteristic invalid-key
// failure modes must actually break the performance.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/spectrum.h"
#include "dsp/tonegen.h"
#include "rf/bp_sigma_delta.h"
#include "rf/receiver.h"
#include "rf/standards.h"
#include "sim/process.h"
#include "sim/rng.h"

namespace {

using namespace analock;

/// Hand-derived correct configuration for the *nominal* chip at 3 GHz.
rf::ModulatorConfig nominal_correct_config(const rf::Standard& std_mode,
                                           const sim::ProcessVariation& pv) {
  rf::ModulatorConfig cfg;
  const rf::LcTank tank(pv);
  // Capacitance that resonates at F0 = fs/4.
  const double f0 = std_mode.f0_hz;
  const double c_needed =
      1.0 / (tank.inductance() * std::pow(2.0 * M_PI * f0, 2.0));
  const double c_excess = c_needed - tank.fixed_cap();
  const double coarse =
      std::floor(c_excess / rf::LcTank::kCoarseStepFarad);
  cfg.cap_coarse = static_cast<std::uint32_t>(std::max(0.0, coarse));
  const double resid =
      c_needed - tank.capacitance(cfg.cap_coarse, 0);
  cfg.cap_fine = static_cast<std::uint32_t>(std::clamp(
      std::round(resid / rf::LcTank::kFineStepFarad), 0.0, 255.0));
  // Largest -Gm code that does not oscillate.
  cfg.q_enh = 0;
  for (std::uint32_t q = 0; q <= rf::LcTank::kQEnhMax; ++q) {
    if (!tank.oscillates(q)) cfg.q_enh = q;
  }
  // Bias codes at the chip's unity-multiplier points.
  cfg.gmin_bias = rf::bias_code_for_multiplier(1.0 / (1.0 + pv.gmin_rel));
  cfg.dac_bias = rf::bias_code_for_multiplier(1.0 / (1.0 + pv.dac_gain_rel));
  cfg.preamp_bias =
      rf::bias_code_for_multiplier(1.0 / (1.0 + pv.preamp_gain_rel));
  cfg.comp_bias = rf::bias_code_for_multiplier(1.2);
  // Loop delay: parasitic + code/15 = 1.0 sample (plus 1 structural = 2).
  cfg.loop_delay = static_cast<std::uint32_t>(std::clamp(
      std::round((1.0 - pv.loop_delay_parasitic) * 15.0), 0.0, 15.0));
  cfg.feedback_enable = true;
  cfg.comp_clock_enable = true;
  cfg.gmin_enable = true;
  cfg.buffer_in_path = false;
  cfg.test_mux = 0;
  return cfg;
}

/// Runs the modulator on a -25 dBm in-band tone (after a 20 dB VGLNA
/// stand-in gain) and returns the in-band SNR at OSR 64.
double modulator_snr_db(const rf::ModulatorConfig& cfg,
                        const sim::ProcessVariation& pv, double input_scale,
                        std::uint64_t seed = 42) {
  const rf::Standard& mode = rf::standard_max_3ghz();
  sim::Rng rng(seed);
  rf::BpSigmaDelta mod(mode, pv, rng);
  mod.configure(cfg);
  const double offset = rf::default_tone_offset_hz(mode);
  auto gen = dsp::single_tone_dbm(mode.f0_hz + offset, -25.0, mode.fs_hz());
  std::vector<double> rf_in = gen.generate(2048 + 8192);
  for (double& x : rf_in) x *= input_scale;
  const auto capture = mod.run(rf_in, 2048);
  dsp::Periodogram p(capture.output, mode.fs_hz());
  const auto snr = dsp::measure_snr_osr(p, mode.f0_hz + offset,
                                        mode.fs_hz() / 4.0, mode.osr);
  return snr.snr_db;
}

constexpr double kVglnaStandInGain = 10.0;  // 20 dB

TEST(BpSigmaDelta, NominalConfigMeetsPaperSnr) {
  const auto pv = sim::ProcessVariation::nominal();
  const auto cfg = nominal_correct_config(rf::standard_max_3ghz(), pv);
  const double snr = modulator_snr_db(cfg, pv, kVglnaStandInGain);
  EXPECT_GT(snr, 40.0) << "correct key must exceed the paper's 40 dB";
  EXPECT_LT(snr, 90.0) << "behavioral noise budget should cap the SNR";
}

TEST(BpSigmaDelta, DetunedCoarseCapKillsSnr) {
  const auto pv = sim::ProcessVariation::nominal();
  auto cfg = nominal_correct_config(rf::standard_max_3ghz(), pv);
  cfg.cap_coarse = 200;  // tank far below fs/4
  const double snr = modulator_snr_db(cfg, pv, kVglnaStandInGain);
  EXPECT_LT(snr, 25.0) << "detuned tank must fall far below the 40 dB spec";
}

TEST(BpSigmaDelta, OpenLoopUnclockedComparatorIsDeceptive) {
  // The paper's invalid key #7: loop open + comparator as buffer. The
  // modulator-output SNR stays deceptively high because nothing is
  // quantized.
  const auto pv = sim::ProcessVariation::nominal();
  auto cfg = nominal_correct_config(rf::standard_max_3ghz(), pv);
  cfg.feedback_enable = false;
  cfg.comp_clock_enable = false;
  const double snr = modulator_snr_db(cfg, pv, kVglnaStandInGain);
  EXPECT_GT(snr, 15.0) << "deceptive key should look plausible";
}

TEST(BpSigmaDelta, MaxQEnhancementOscillates) {
  const auto pv = sim::ProcessVariation::nominal();
  auto cfg = nominal_correct_config(rf::standard_max_3ghz(), pv);
  cfg.q_enh = rf::LcTank::kQEnhMax;
  cfg.gmin_enable = false;
  cfg.feedback_enable = false;
  const rf::Standard& mode = rf::standard_max_3ghz();
  sim::Rng rng(7);
  rf::BpSigmaDelta mod(mode, pv, rng);
  mod.configure(cfg);
  EXPECT_TRUE(mod.tank_oscillating());
  // Free-run: the resonator states must grow to a limit cycle from noise.
  for (int i = 0; i < 4096; ++i) mod.step(0.0);
  double rms = 0.0;
  for (int i = 0; i < 1024; ++i) {
    mod.step(0.0);
    rms += mod.resonator2_state() * mod.resonator2_state();
  }
  rms = std::sqrt(rms / 1024.0);
  EXPECT_GT(rms, 1.0) << "oscillation mode must rail the resonators";
}

TEST(BpSigmaDelta, WrongLoopDelayDegrades) {
  const auto pv = sim::ProcessVariation::nominal();
  auto cfg = nominal_correct_config(rf::standard_max_3ghz(), pv);
  const double snr_good = modulator_snr_db(cfg, pv, kVglnaStandInGain);
  cfg.loop_delay = 0;
  const double snr_bad = modulator_snr_db(cfg, pv, kVglnaStandInGain);
  EXPECT_LT(snr_bad, snr_good - 3.0);
}

}  // namespace
