// Unit tests for the arbiter-PUF model.
#include <gtest/gtest.h>

#include <cmath>

#include "lock/puf.h"
#include "sim/rng.h"

namespace {

using analock::lock::ArbiterPuf;
using analock::lock::Key64;
using analock::sim::Rng;

TEST(Puf, NoiseFreeDelayIsDeterministic) {
  ArbiterPuf puf(Rng(100));
  EXPECT_DOUBLE_EQ(puf.delay_difference(0xABCDu),
                   puf.delay_difference(0xABCDu));
}

TEST(Puf, DifferentChallengesDifferentDelays) {
  ArbiterPuf puf(Rng(100));
  EXPECT_NE(puf.delay_difference(1), puf.delay_difference(2));
}

TEST(Puf, VotedResponseIsReliable) {
  ArbiterPuf puf(Rng(100));
  // The voted response must be stable across repeated regenerations for
  // nearly all challenges.
  Rng chal_rng(5);
  int unstable = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t c = chal_rng.next_u64();
    const bool first = puf.response_voted(c);
    for (int rep = 0; rep < 5; ++rep) {
      if (puf.response_voted(c) != first) {
        ++unstable;
        break;
      }
    }
  }
  EXPECT_LE(unstable, 4);  // ~2% marginal challenges tolerated
}

TEST(Puf, IdentificationKeyReproducible) {
  ArbiterPuf puf(Rng(100));
  const Key64 a = puf.identification_key(3);
  const Key64 b = puf.identification_key(3);
  EXPECT_EQ(a, b);
}

TEST(Puf, DifferentSlotsDifferentKeys) {
  ArbiterPuf puf(Rng(100));
  EXPECT_NE(puf.identification_key(0), puf.identification_key(1));
}

TEST(Puf, UniquenessAcrossChips) {
  // Inter-chip Hamming distance of identification keys should be near 32
  // of 64 bits (ideal 50%).
  double total = 0.0;
  const int pairs = 40;
  for (int i = 0; i < pairs; ++i) {
    ArbiterPuf a(Rng(static_cast<std::uint64_t>(1000 + 2 * i)));
    ArbiterPuf b(Rng(static_cast<std::uint64_t>(1001 + 2 * i)));
    total += a.identification_key(0).hamming_distance(
        b.identification_key(0));
  }
  const double mean = total / pairs;
  EXPECT_GT(mean, 24.0);
  EXPECT_LT(mean, 40.0);
}

TEST(Puf, ResponseBiasIsBalanced) {
  // Across random challenges a healthy arbiter PUF answers ~50/50.
  ArbiterPuf puf(Rng(321));
  Rng chal(9);
  int ones = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (puf.response_voted(chal.next_u64(), 5)) ++ones;
  }
  const double rate = static_cast<double>(ones) / n;
  EXPECT_GT(rate, 0.40);
  EXPECT_LT(rate, 0.60);
}

TEST(Puf, NoisyResponseFlipsNearThreshold) {
  // With a huge noise sigma single evaluations of a near-zero-delay
  // challenge disagree sometimes — the reason voting exists.
  ArbiterPuf noisy(Rng(100), 5.0);
  Rng chal(11);
  // Find a challenge with small |delay|.
  std::uint64_t c = 0;
  double best = 1e9;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t cand = chal.next_u64();
    const double d = std::abs(noisy.delay_difference(cand));
    if (d < best) {
      best = d;
      c = cand;
    }
  }
  int ones = 0;
  for (int i = 0; i < 200; ++i) {
    if (noisy.response(c)) ++ones;
  }
  EXPECT_GT(ones, 5);
  EXPECT_LT(ones, 195);
}

TEST(Puf, SingleChallengeBitFlipChangesManyFeatureSigns) {
  // Flipping a low-index challenge bit flips the parity features below it;
  // the delay difference must change.
  ArbiterPuf puf(Rng(100));
  const std::uint64_t c = 0x123456789ABCDEFull;
  EXPECT_NE(puf.delay_difference(c), puf.delay_difference(c ^ 1ull));
}

}  // namespace
