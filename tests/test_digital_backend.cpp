// Unit tests for the digital down-conversion + decimation backend.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "dsp/spectrum.h"
#include "rf/digital_backend.h"

namespace {

using namespace analock;
using rf::DigitalBackend;

TEST(DigitalBackend, OutputRateIsFsOver64) {
  DigitalBackend be(12.0e9, 0);
  EXPECT_DOUBLE_EQ(be.output_rate_hz(), 12.0e9 / 64.0);
}

TEST(DigitalBackend, ProducesOneOutputPer64Inputs) {
  DigitalBackend be(12.0e9, 0);
  std::vector<double> in(6400, 1.0);
  const auto bb = be.process(in);
  EXPECT_EQ(bb.samples.size(), 100u);
}

TEST(DigitalBackend, SettleDropsLeadingSamples) {
  DigitalBackend be(12.0e9, 0);
  std::vector<double> in(6400, 1.0);
  const auto bb = be.process(in, 10);
  EXPECT_EQ(bb.samples.size(), 90u);
}

TEST(DigitalBackend, BitstreamToneRecoveredAtBaseband) {
  // A clocked-comparator-style +/-1 stream carrying a tone at fs/4+offset
  // must appear at `offset` in the complex baseband.
  const double fs = 12.0e9;
  const double offset = 16.0 * fs / 8192.0;
  const std::size_t n = 8192 * 40;
  std::vector<double> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = std::sin(2.0 * std::numbers::pi * (fs / 4.0 + offset) *
                              static_cast<double>(i) / fs);
    in[i] = v >= 0.0 ? 1.0 : -1.0;  // already a hard bitstream
  }
  DigitalBackend be(fs, 0);
  auto bb = be.process(in, 16);
  bb.samples.resize(4096);
  const dsp::Periodogram p(bb.samples, bb.fs_hz);
  const auto tone = p.tone_power(offset);
  EXPECT_GT(tone.power, 0.05);
  EXPECT_NEAR(p.freq_of(tone.peak_bin), offset, 2.0 * p.bin_hz());
}

TEST(DigitalBackend, SubThresholdInputFreezesSlicer) {
  // The deceptive-key waveform: analog swings below the logic threshold
  // never register; the output is a frozen constant and carries no tone.
  const double fs = 12.0e9;
  const double offset = 16.0 * fs / 8192.0;
  const std::size_t n = 8192 * 40;
  std::vector<double> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = 0.45 * std::sin(2.0 * std::numbers::pi * (fs / 4.0 + offset) *
                            static_cast<double>(i) / fs);
  }
  DigitalBackend be(fs, 0);
  auto bb = be.process(in, 16);
  bb.samples.resize(4096);
  const dsp::Periodogram p(bb.samples, bb.fs_hz);
  const auto snr = dsp::measure_snr(p, offset, -fs / 256.0, fs / 256.0);
  EXPECT_FALSE(snr.signal_found);
}

TEST(DigitalBackend, HysteresisHoldsBetweenThresholds) {
  DigitalBackend be(12.0e9, 0);
  std::complex<double> out;
  // Drive above VIH, then dither inside the dead zone: the slicer state
  // must hold at +1 (observable via the DC content of the mixer input is
  // not directly exposed, so drive enough samples and check the baseband
  // is what a constant +1 produces: zero after the DC-free mixer? The
  // fs/4 mixer maps a constant to a tone at -fs/4, out of band).
  // Simpler: feed a +1 step then sub-threshold noise; no crash and the
  // output remains finite.
  for (int i = 0; i < 64; ++i) be.push(1.0, out);
  for (int i = 0; i < 6400; ++i) {
    be.push(0.2 * std::sin(0.1 * i), out);
    EXPECT_TRUE(std::isfinite(out.real()));
  }
}

TEST(DigitalBackend, DigitalModeSelectsChannelFilter) {
  // Different 3-bit modes build different channel filters; both must pass
  // the in-band tone (all cutoffs >= the metrology band).
  const double fs = 12.0e9;
  const double offset = 16.0 * fs / 8192.0;
  const std::size_t n = 8192 * 24;
  std::vector<double> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = std::sin(2.0 * std::numbers::pi * (fs / 4.0 + offset) *
                              static_cast<double>(i) / fs);
    in[i] = v >= 0.0 ? 1.0 : -1.0;
  }
  for (std::uint32_t mode : {0u, 1u, 5u, 7u}) {
    DigitalBackend be(fs, mode);
    auto bb = be.process(in, 16);
    bb.samples.resize(2048);
    const dsp::Periodogram p(bb.samples, bb.fs_hz);
    EXPECT_GT(p.tone_power(offset).power, 0.03) << "mode " << mode;
  }
}

TEST(DigitalBackend, ResetRestoresInitialState) {
  DigitalBackend be(12.0e9, 0);
  std::complex<double> out;
  for (int i = 0; i < 640; ++i) be.push(1.0, out);
  be.reset();
  DigitalBackend fresh(12.0e9, 0);
  std::complex<double> a;
  std::complex<double> b;
  for (int i = 0; i < 640; ++i) {
    const bool ra = be.push(-1.0, a);
    const bool rb = fresh.push(-1.0, b);
    EXPECT_EQ(ra, rb);
    if (ra) {
      EXPECT_NEAR(a.real(), b.real(), 1e-12);
      EXPECT_NEAR(a.imag(), b.imag(), 1e-12);
    }
  }
}

}  // namespace
