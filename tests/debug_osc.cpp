// Scratch diagnostic for the oscillation-mode frequency counter.
#include <cstdio>

#include "calib/oscillation_tuner.h"
#include "rf/receiver.h"
#include "rf/standards.h"
#include "sim/process.h"
#include "sim/rng.h"

using namespace analock;

int main() {
  const rf::Standard& mode = rf::standard_max_3ghz();
  sim::Rng master(2026);
  const auto pv = sim::ProcessVariation::monte_carlo(master, 0);
  rf::Receiver chip(mode, pv, master.fork("chip", 0));
  calib::OscillationTuner tuner(chip);
  for (std::uint32_t coarse : {0u, 4u, 8u, 9u, 10u, 12u, 16u, 32u, 64u, 128u, 255u}) {
    const auto m = tuner.measure(coarse, 128);
    std::printf("coarse=%3u fine=128: f=%.4f GHz rms=%.3f\n", coarse,
                m.freq_hz / 1e9, m.rms);
  }
  const rf::LcTank tank(pv);
  std::printf("tank: fres(9,128)=%.4f GHz  q0=%.2f  r(q=63)=%.4f\n",
              tank.resonance_hz(9, 128) / 1e9, tank.q_intrinsic(),
              tank.pole_radius(9, 128, 63, mode.fs_hz()));
  const auto r = tuner.tune(mode.f0_hz);
  std::printf("tune: coarse=%u fine=%u achieved=%.5f GHz conv=%d meas=%zu\n",
              r.cap_coarse, r.cap_fine, r.achieved_hz / 1e9, r.converged,
              r.measurements);
  // Gentle-overdrive characterization: frequency vs fine code at q just
  // above threshold (chip0 threshold is ~24 for q0=7.7 at step 1/192).
  for (std::uint32_t q : {22u, 24u, 26u, 30u, 40u, 63u}) {
    const auto m = tuner.measure_at_q(r.cap_coarse, 128, q, 32768);
    std::printf("q=%2u fine=128: f=%.5f GHz rms=%.3f\n", q, m.freq_hz / 1e9,
                m.rms);
  }
  for (std::uint32_t fine : {0u, 64u, 128u, 192u, 255u}) {
    const auto m = tuner.measure_at_q(r.cap_coarse, fine, 26, 32768);
    std::printf("fine=%3u q=26: f=%.5f GHz rms=%.3f\n", fine, m.freq_hz / 1e9,
                m.rms);
  }
  return 0;
}
