// Unit tests for the warm-start (gradient) attack of Section IV.B.3.
#include <gtest/gtest.h>

#include "attack/warm_start.h"
#include "calibrated_fixture.h"

namespace {

using namespace analock;
using attack::WarmStartAttack;
using attack::WarmStartOptions;

TEST(WarmStart, DonorKeyAloneIsDegradedOnVictim) {
  // Chip 0's key applied to chip 1: process variation costs margin.
  auto ev = fixtures::make_evaluator(1);
  const double own = ev.snr_receiver_db(fixtures::chip(1).cal.key);
  const double cross = ev.snr_receiver_db(fixtures::chip(0).cal.key);
  EXPECT_GT(own, cross);
}

TEST(WarmStart, RefinementRecoversSpecOnVictimChip) {
  // The paper's residual risk: a leaked key is a good starting point for
  // quickly calibrating any chip.
  auto ev = fixtures::make_evaluator(1);
  WarmStartAttack attack(ev, sim::Rng(3000));
  WarmStartOptions options;
  options.max_trials = 1200;
  const auto result = attack.run(fixtures::chip(0).cal.key, options);
  EXPECT_GT(result.best_screen_snr_db, result.start_snr_db)
      << "local refinement must improve on the donor key";
  EXPECT_GT(result.receiver_snr_db, 40.0);
  EXPECT_TRUE(result.success);
  // And it is cheap relative to brute force: well under the calibration
  // measurement budget.
  EXPECT_LT(result.trials, 1300u);
}

TEST(WarmStart, MovesOnlyAFewBits) {
  auto ev = fixtures::make_evaluator(1);
  WarmStartAttack attack(ev, sim::Rng(3001));
  WarmStartOptions options;
  options.max_trials = 1200;
  const auto result = attack.run(fixtures::chip(0).cal.key, options);
  EXPECT_LE(result.hamming_moved, 32u)
      << "warm start should stay in the donor key's neighborhood";
}

TEST(WarmStart, FromOwnKeyIsNoWorse) {
  auto ev = fixtures::make_evaluator(0);
  WarmStartAttack attack(ev, sim::Rng(3002));
  WarmStartOptions options;
  options.max_trials = 800;
  const auto result = attack.run(fixtures::chip(0).cal.key, options);
  EXPECT_GE(result.best_screen_snr_db + 0.5, result.start_snr_db);
  EXPECT_TRUE(result.success);
}

TEST(WarmStart, ColdRandomStartFailsWithSameBudget) {
  // The same local-window search from a random key goes nowhere: the
  // windows never reach the distant true codes.
  auto ev = fixtures::make_evaluator(1);
  WarmStartAttack attack(ev, sim::Rng(3003));
  WarmStartOptions options;
  options.max_trials = 1200;
  sim::Rng key_rng(55);
  const auto result =
      attack.run(lock::force_mission_mode(lock::Key64::random(key_rng)),
                 options);
  EXPECT_FALSE(result.success);
}

TEST(WarmStart, TrialBudgetRespected) {
  auto ev = fixtures::make_evaluator(1);
  WarmStartAttack attack(ev, sim::Rng(3004));
  WarmStartOptions options;
  options.max_trials = 100;
  const auto result = attack.run(fixtures::chip(0).cal.key, options);
  EXPECT_LE(result.trials, 102u);
}

}  // namespace
