// Integration tests pinning the paper's Section VI claims (the same
// checks the bench binaries report, at reduced sample counts).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "calibrated_fixture.h"
#include "lock/key_layout.h"

namespace {

using namespace analock;
using lock::Key64;

struct Fig7Data {
  double correct_snr_mod;
  double correct_snr_rx;
  std::vector<double> invalid_snr_mod;
  std::vector<double> invalid_snr_rx;
  Key64 deceptive_key;
  double deceptive_snr_mod = -300.0;
};

/// 40 random invalid keys measured at both outputs (the paper uses 100;
/// 40 keeps the test binary fast while preserving the distribution).
const Fig7Data& fig7() {
  static const Fig7Data data = [] {
    Fig7Data d;
    auto ev = fixtures::make_evaluator(0);
    const auto& key = fixtures::chip(0).cal.key;
    d.correct_snr_mod = ev.snr_modulator_db(key);
    d.correct_snr_rx = ev.snr_receiver_db(key);
    sim::Rng rng(777);
    for (int i = 0; i < 40; ++i) {
      const Key64 k = Key64::random(rng);
      const double snr_mod = ev.snr_modulator_db(k);
      d.invalid_snr_mod.push_back(snr_mod);
      d.invalid_snr_rx.push_back(ev.snr_receiver_db(k));
      if (snr_mod > d.deceptive_snr_mod) {
        d.deceptive_snr_mod = snr_mod;
        d.deceptive_key = k;
      }
    }
    return d;
  }();
  return data;
}

TEST(PaperFig7, CorrectKeyExceeds40dB) {
  EXPECT_GT(fig7().correct_snr_mod, 40.0);
}

TEST(PaperFig7, InvalidKeysAreLockedBySomePerformance) {
  // The paper's criterion: locking succeeds when at least one performance
  // violates its specification. Most invalid keys already fail on SNR; a
  // rare class (loop open + clocked comparator + near-tuned tank = a
  // high-Q filter + slicer) can preserve single-tone SNR but is crushed
  // by the two-tone SFDR check.
  auto ev = fixtures::make_evaluator(0);
  sim::Rng rng(777);
  const auto& spec = ev.standard().spec;
  int snr_passers = 0;
  for (std::size_t i = 0; i < fig7().invalid_snr_mod.size(); ++i) {
    const Key64 k = [&] {
      sim::Rng r2(777);
      Key64 key{};
      for (std::size_t j = 0; j <= i; ++j) key = Key64::random(r2);
      return key;
    }();
    if (fig7().invalid_snr_mod[i] >= spec.min_snr_db) {
      ++snr_passers;
      // The modulator-output SNR screen is deceived; the full check
      // (receiver-output SNR and two-tone SFDR) must reject the key.
      EXPECT_FALSE(ev.evaluate(k).unlocked()) << "key " << i;
    }
  }
  (void)rng;
  EXPECT_LE(snr_passers, 3) << "SNR-screen passers must stay a rare class";
}

TEST(PaperFig7, MostInvalidKeysBelowZero) {
  const auto below = std::count_if(fig7().invalid_snr_mod.begin(),
                                   fig7().invalid_snr_mod.end(),
                                   [](double s) { return s < 0.0; });
  EXPECT_GT(below, static_cast<long>(fig7().invalid_snr_mod.size()) / 2);
}

TEST(PaperFig9, InvalidKeysCollapseAtReceiverOutput) {
  // Nearly all invalid keys fall below 10 dB at the receiver output (the
  // paper's Fig. 9 statement); the rare filter+slicer class that keeps a
  // tone is SFDR-locked (checked in the Fig. 7 test above).
  const auto below_10 = std::count_if(
      fig7().invalid_snr_rx.begin(), fig7().invalid_snr_rx.end(),
      [](double s) { return s < 10.0; });
  EXPECT_GE(below_10,
            static_cast<long>(fig7().invalid_snr_rx.size()) - 2);
}

TEST(PaperFig9, CorrectKeyUnchangedAtReceiverOutput) {
  EXPECT_GT(fig7().correct_snr_rx, 40.0);
  EXPECT_NEAR(fig7().correct_snr_rx, fig7().correct_snr_mod, 6.0);
}

TEST(PaperFig9, DeceptiveKeyCollapsesThroughDigitalSection) {
  // The paper's key #7 behavior: whatever the best invalid key scores at
  // the modulator output, the receiver output strips the deception.
  const auto& d = fig7();
  auto ev = fixtures::make_evaluator(0);
  const double rx = ev.snr_receiver_db(d.deceptive_key);
  EXPECT_LT(rx, 10.0);
  EXPECT_LT(rx, d.deceptive_snr_mod + 1.0);
}

TEST(PaperFig8, CorrectKeyOutputsBilevelBitstream) {
  const auto& c = fixtures::chip(0);
  rf::Receiver rx(rf::standard_max_3ghz(), c.pv, c.rng);
  rx.configure(lock::decode_key(c.cal.key));
  const auto in = rf::make_test_tone(rf::standard_max_3ghz(), -25.0, 4096);
  const auto cap = rx.capture_modulator(in, 2048);
  for (const double y : cap.output) {
    EXPECT_TRUE(y == 1.0 || y == -1.0);
  }
}

TEST(PaperFig8, OpenLoopUnclockedKeyOutputsAnalogWaveform) {
  // Construct the paper's deceptive-key class explicitly: loop open +
  // comparator unclocked, tank near-tuned.
  const auto& c = fixtures::chip(0);
  using L = lock::KeyLayout;
  Key64 k = c.cal.key.with_bit(L::kFeedbackEnable, false)
                .with_bit(L::kCompClockEnable, false);
  rf::Receiver rx(rf::standard_max_3ghz(), c.pv, c.rng);
  rx.configure(lock::decode_key(k));
  const auto in = rf::make_test_tone(rf::standard_max_3ghz(), -25.0, 4096);
  const auto cap = rx.capture_modulator(in, 2048);
  int analog_levels = 0;
  for (const double y : cap.output) {
    if (y != 1.0 && y != -1.0) ++analog_levels;
    EXPECT_LT(std::abs(y), 0.5) << "un-clocked swing below logic threshold";
  }
  EXPECT_EQ(analog_levels, static_cast<int>(cap.output.size()))
      << "every sample of the un-clocked output is analog";
}

TEST(PaperFig10, DeceptiveKeyShowsNoNoiseShaping) {
  // Fig. 10's visual signature is the shaped quantization-noise hump
  // rising away from the fs/4 notch. The correct key's PSD carries most
  // of the bitstream power in that out-of-band hump; the deceptive key's
  // analog waveform has no quantization noise at all, so the hump is
  // absent ("no noise shaping").
  const auto& c = fixtures::chip(0);
  using L = lock::KeyLayout;
  const Key64 deceptive = c.cal.key.with_bit(L::kFeedbackEnable, false)
                              .with_bit(L::kCompClockEnable, false);
  auto hump_to_signal = [&](const Key64& key) {
    rf::Receiver rx(rf::standard_max_3ghz(), c.pv, c.rng);
    rx.configure(lock::decode_key(key));
    const auto in =
        rf::make_test_tone(rf::standard_max_3ghz(), -25.0, 2048 + 8192);
    const auto cap = rx.capture_modulator(in, 2048);
    const dsp::Periodogram p(cap.output, rx.fs_hz());
    const double f0 = rx.fs_hz() / 4.0;
    const double half = rx.fs_hz() / 256.0;
    const double signal =
        p.tone_power(f0 + rf::default_tone_offset_hz(rx.standard())).power;
    double total = 0.0;
    for (const double b : p.power()) total += b;
    const double in_band = p.band_power(f0 - half, f0 + half);
    // Everything outside the band that is not the signal is the shaped
    // quantization noise of a working modulator.
    const double hump = total - in_band;
    return hump / std::max(signal, 1e-30);
  };
  const double correct_ratio = hump_to_signal(c.cal.key);
  const double deceptive_ratio = hump_to_signal(deceptive);
  EXPECT_GT(correct_ratio, 1.0)
      << "correct key: shaped quantization noise dominates out of band";
  EXPECT_LT(deceptive_ratio, correct_ratio / 10.0)
      << "deceptive key: no quantization-noise hump";
}

TEST(PaperFig11, LockedKeyDynamicRangeIsBroken) {
  auto ev = fixtures::make_evaluator(0);
  const auto& c = fixtures::chip(0);
  using L = lock::KeyLayout;
  const Key64 deceptive = c.cal.key.with_bit(L::kFeedbackEnable, false)
                              .with_bit(L::kCompClockEnable, false);
  int correct_above_20 = 0;
  int deceptive_above_20 = 0;
  for (double dbm = -60.0; dbm <= -20.0; dbm += 10.0) {
    if (ev.snr_receiver_db(c.cal.key, dbm) > 20.0) ++correct_above_20;
    if (ev.snr_receiver_db(deceptive, dbm) > 20.0) ++deceptive_above_20;
  }
  EXPECT_GE(correct_above_20, 3);
  EXPECT_EQ(deceptive_above_20, 0);
}

TEST(PaperFig12, LockedKeyHasMuchLowerSfdr) {
  auto ev = fixtures::make_evaluator(0);
  const auto& c = fixtures::chip(0);
  using L = lock::KeyLayout;
  const Key64 deceptive = c.cal.key.with_bit(L::kFeedbackEnable, false)
                              .with_bit(L::kCompClockEnable, false);
  const double sfdr_correct = ev.sfdr_db(c.cal.key);
  const double sfdr_deceptive = ev.sfdr_db(deceptive);
  EXPECT_GT(sfdr_correct, 40.0);
  EXPECT_LT(sfdr_deceptive, sfdr_correct - 10.0);
}

TEST(PaperSecVIB, BinaryWeightedCapsHaveUniqueSubKey) {
  // "capacitor arrays are binary-weighted, thus for a desired capacitor
  // value there is a unique sub-key": distinct codes give distinct C.
  const rf::LcTank tank(fixtures::chip(0).pv);
  std::vector<double> caps;
  for (std::uint32_t c = 0; c < 64; ++c) {
    caps.push_back(tank.capacitance(c, 17));
  }
  std::sort(caps.begin(), caps.end());
  EXPECT_TRUE(std::adjacent_find(caps.begin(), caps.end()) == caps.end());
}

}  // namespace
