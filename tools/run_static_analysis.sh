#!/usr/bin/env bash
# Runs the full static-analysis stack over the repository:
#
#   1. analock-lint tree scan      (domain regex rules; always available)
#   2. analock-lint fixture self-test (the linter's own golden tests)
#   3. analock-verify              (the C++ deep analyzer: interprocedural
#                                   secret taint, guarded_by lock checks,
#                                   determinism dataflow; built on demand)
#   4. analock-verify self-test    (golden // expect: fixtures)
#   5. clang-tidy                  (curated .clang-tidy profile; skipped
#                                   with a notice when not installed)
#
# Usage: tools/run_static_analysis.sh [build-dir]
#
# The build dir (default: build) hosts the analock_verify binary and the
# compile_commands.json consumed by clang-tidy; the top-level CMakeLists
# exports the database unconditionally, so one configure serves both.
# analock-verify also writes analock_verify.sarif into the build dir and
# validates it against the SARIF 2.1.0 structure (check_sarif.py).
#
# Exit status is non-zero if any stage that actually ran found problems.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
LINT="$ROOT/tools/analock_lint/analock_lint.py"
VERIFY_BIN="$BUILD_DIR/tools/analock_verify/analock_verify"
STATUS=0

echo "== analock-lint: tree scan =="
if ! python3 "$LINT" --root "$ROOT" --jobs 0 src bench examples tests tools; then
  STATUS=1
fi

echo
echo "== analock-lint: fixture self-test =="
if ! python3 "$LINT" --self-test "$ROOT/tests/lint_fixtures"; then
  STATUS=1
fi

echo
echo "== analock-verify: deep analysis =="
if [ ! -x "$VERIFY_BIN" ]; then
  echo "analock_verify not built; configuring and building..."
  cmake -B "$BUILD_DIR" -S "$ROOT" >/dev/null \
    && cmake --build "$BUILD_DIR" --target analock_verify -j >/dev/null
fi
if [ -x "$VERIFY_BIN" ]; then
  SARIF_OUT="$BUILD_DIR/analock_verify.sarif"
  if ! "$VERIFY_BIN" --root "$ROOT/src" \
      --diff-baseline "$ROOT/tools/analock_verify/baseline.sarif" \
      --sarif "$SARIF_OUT"; then
    STATUS=1
  fi
  echo
  echo "== analock-verify: fixture self-test =="
  if ! "$VERIFY_BIN" --self-test "$ROOT/tests/verify_fixtures"; then
    STATUS=1
  fi
  echo
  echo "== analock-verify: SARIF structure check =="
  if ! python3 "$ROOT/tools/analock_verify/check_sarif.py" "$SARIF_OUT"; then
    STATUS=1
  fi
else
  echo "could not build analock_verify; failing the run."
  STATUS=1
fi

echo
echo "== clang-tidy =="
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping (the .clang-tidy profile at"
  echo "the repo root applies when it is available)."
  exit $STATUS
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "no compile_commands.json in $BUILD_DIR; configuring..."
  cmake -B "$BUILD_DIR" -S "$ROOT" >/dev/null || exit 1
fi

# Product sources only: tests/benches link against gtest/benchmark whose
# headers are outside the profile's remit.
mapfile -t SOURCES < <(find "$ROOT/src" "$ROOT/tools" -name '*.cpp' | sort)
if command -v run-clang-tidy >/dev/null 2>&1; then
  if ! run-clang-tidy -p "$BUILD_DIR" -quiet "${SOURCES[@]}"; then
    STATUS=1
  fi
else
  for src in "${SOURCES[@]}"; do
    if ! clang-tidy -p "$BUILD_DIR" --quiet "$src"; then
      STATUS=1
    fi
  done
fi

exit $STATUS
