#!/usr/bin/env bash
# Runs the full static-analysis stack over the repository:
#
#   1. analock-lint tree scan      (domain rules; always available)
#   2. analock-lint fixture self-test (the linter's own golden tests)
#   3. clang-tidy                  (curated .clang-tidy profile; skipped
#                                   with a notice when not installed)
#
# Usage: tools/run_static_analysis.sh [build-dir]
#
# The build dir (default: build) is only needed for clang-tidy, which
# wants a compile_commands.json; it is (re)configured with
# CMAKE_EXPORT_COMPILE_COMMANDS=ON if the database is missing.
#
# Exit status is non-zero if any stage that actually ran found problems.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
LINT="$ROOT/tools/analock_lint/analock_lint.py"
STATUS=0

echo "== analock-lint: tree scan =="
if ! python3 "$LINT" --root "$ROOT" src bench examples tests tools; then
  STATUS=1
fi

echo
echo "== analock-lint: fixture self-test =="
if ! python3 "$LINT" --self-test "$ROOT/tests/lint_fixtures"; then
  STATUS=1
fi

echo
echo "== clang-tidy =="
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping (the .clang-tidy profile at"
  echo "the repo root applies when it is available)."
  exit $STATUS
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "no compile_commands.json in $BUILD_DIR; configuring..."
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    >/dev/null || exit 1
fi

# Product sources only: tests/benches link against gtest/benchmark whose
# headers are outside the profile's remit.
mapfile -t SOURCES < <(find "$ROOT/src" "$ROOT/tools" -name '*.cpp' | sort)
if command -v run-clang-tidy >/dev/null 2>&1; then
  if ! run-clang-tidy -p "$BUILD_DIR" -quiet "${SOURCES[@]}"; then
    STATUS=1
  fi
else
  for src in "${SOURCES[@]}"; do
    if ! clang-tidy -p "$BUILD_DIR" --quiet "$src"; then
      STATUS=1
    fi
  done
fi

exit $STATUS
