#!/usr/bin/env bash
# Runs the full static-analysis stack over the repository:
#
#   1. analock-lint tree scan      (domain regex rules; always available)
#   2. analock-lint fixture self-test (the linter's own golden tests)
#   3. analock-verify              (the C++ deep analyzer: interprocedural
#                                   secret taint, guarded_by lock checks,
#                                   determinism dataflow, parallel-region
#                                   safety, lock-order cycles, FP
#                                   bit-exactness; built on demand)
#   4. analock-verify self-test    (golden // expect: fixtures, including
#                                   the parallelism and constant-time
#                                   fixtures)
#   5. SARIF structure check       (2.1.0 shape of both emitted logs)
#   6. clang-tidy                  (curated .clang-tidy profile; skipped
#                                   with a notice when not installed)
#
# Usage: tools/run_static_analysis.sh [build-dir]
#
# The build dir (default: build) hosts the analock_verify binary and the
# compile_commands.json consumed by clang-tidy; the top-level CMakeLists
# exports the database unconditionally, so one configure serves both.
# analock-verify writes analock_verify.sarif (the src scan) and
# analock_fixtures.sarif (the fixture scan) into the build dir; both are
# validated against the SARIF 2.1.0 structure (check_sarif.py).
#
# Every stage records pass/fail/skip and the script prints a summary at
# the end; the exit status aggregates ALL stages that ran, so a passing
# later stage can never mask an earlier failure.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
LINT="$ROOT/tools/analock_lint/analock_lint.py"
VERIFY_BIN="$BUILD_DIR/tools/analock_verify/analock_verify"

STAGE_NAMES=()
STAGE_RESULTS=()
STATUS=0

# record <name> <result: pass|FAIL|skip>
record() {
  STAGE_NAMES+=("$1")
  STAGE_RESULTS+=("$2")
  if [ "$2" = "FAIL" ]; then
    STATUS=1
  fi
}

# run_stage <name> <command...> — runs the command, records pass/FAIL.
run_stage() {
  local name="$1"
  shift
  echo
  echo "== $name =="
  if "$@"; then
    record "$name" pass
  else
    record "$name" FAIL
  fi
}

run_stage "analock-lint: tree scan" \
  python3 "$LINT" --root "$ROOT" --jobs 0 src bench examples tests tools

run_stage "analock-lint: fixture self-test" \
  python3 "$LINT" --self-test "$ROOT/tests/lint_fixtures"

echo
echo "== analock-verify: build =="
if [ ! -x "$VERIFY_BIN" ]; then
  echo "analock_verify not built; configuring and building..."
  cmake -B "$BUILD_DIR" -S "$ROOT" >/dev/null \
    && cmake --build "$BUILD_DIR" --target analock_verify -j >/dev/null
fi

if [ -x "$VERIFY_BIN" ]; then
  SARIF_OUT="$BUILD_DIR/analock_verify.sarif"
  FIXTURE_SARIF_OUT="$BUILD_DIR/analock_fixtures.sarif"

  run_stage "analock-verify: deep analysis (src)" \
    "$VERIFY_BIN" --root "$ROOT/src" \
    --diff-baseline "$ROOT/tools/analock_verify/baseline.sarif" \
    --sarif "$SARIF_OUT"

  run_stage "analock-verify: fixture self-test" \
    "$VERIFY_BIN" --self-test "$ROOT/tests/verify_fixtures"

  run_stage "analock-verify: parallel fixture self-test" \
    "$VERIFY_BIN" --self-test "$ROOT/tests/verify_fixtures/parallel"

  run_stage "analock-verify: constant-time fixture self-test" \
    "$VERIFY_BIN" --self-test "$ROOT/tests/verify_fixtures/ct"

  # Fixture scan as a SARIF log: CI merges this with the src scan into
  # one artifact, and the schema check guards the emitter on a log that
  # is guaranteed to carry results.
  run_stage "analock-verify: fixture SARIF emit" \
    "$VERIFY_BIN" --root "$ROOT/tests/verify_fixtures" \
    --sarif "$FIXTURE_SARIF_OUT" --exit-zero

  run_stage "analock-verify: SARIF structure check (src)" \
    python3 "$ROOT/tools/analock_verify/check_sarif.py" "$SARIF_OUT"

  run_stage "analock-verify: SARIF structure check (fixtures)" \
    python3 "$ROOT/tools/analock_verify/check_sarif.py" \
    "$FIXTURE_SARIF_OUT" --require-results
else
  echo "could not build analock_verify."
  record "analock-verify: build" FAIL
fi

echo
echo "== clang-tidy =="
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping (the .clang-tidy profile at"
  echo "the repo root applies when it is available)."
  record "clang-tidy" skip
else
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "no compile_commands.json in $BUILD_DIR; configuring..."
    cmake -B "$BUILD_DIR" -S "$ROOT" >/dev/null
  fi
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    record "clang-tidy" FAIL
  else
    # Product sources only: tests/benches link against gtest/benchmark
    # whose headers are outside the profile's remit.
    mapfile -t SOURCES < <(find "$ROOT/src" "$ROOT/tools" -name '*.cpp' | sort)
    TIDY_OK=1
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -p "$BUILD_DIR" -quiet "${SOURCES[@]}" || TIDY_OK=0
    else
      for src in "${SOURCES[@]}"; do
        clang-tidy -p "$BUILD_DIR" --quiet "$src" || TIDY_OK=0
      done
    fi
    if [ "$TIDY_OK" = 1 ]; then
      record "clang-tidy" pass
    else
      record "clang-tidy" FAIL
    fi
  fi
fi

echo
echo "== summary =="
for i in "${!STAGE_NAMES[@]}"; do
  printf '  %-48s %s\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}"
done
if [ "$STATUS" -ne 0 ]; then
  echo "static analysis: FAILED (see stages marked FAIL above)"
else
  echo "static analysis: all executed stages passed"
fi
exit $STATUS
