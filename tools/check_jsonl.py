#!/usr/bin/env python3
"""Validates the observability JSONL artifact written by a bench binary.

Runs the given bench in a scratch directory with a small trial budget
(ANALOCK_BENCH_TRIALS) so it finishes quickly, then checks that the
artifact is well-formed:

  * every line parses as a standalone JSON object;
  * every line carries the required fields: ts_ns (non-negative int),
    type ("span" | "event" | "summary"), name (non-empty string);
  * span lines carry a non-negative dur_ns;
  * there is at least one summary line of kind "span" with calls >= 1
    and both p50_ms and p95_ms present (the per-span timing summary);
  * attack.convergence events per attack have strictly increasing
    best_score and non-decreasing query counts (the convergence curve
    the attack benches are meant to record); a drop in the query count
    marks the start of a new run of the same attack and resets the curve.
    Benches that run no attacks (e.g. the fault-resilience sweep) pass
    --no-convergence to skip this requirement; convergence events that
    do appear are still validated.

A missing artifact, a zero-byte artifact, or an artifact with no records
all fail with a non-zero exit code; parse errors report the offending
line number.

Usage: check_jsonl.py [--no-convergence] <bench-binary> <artifact-name> [trials]
Exit code 0 = artifact valid.
"""

import json
import os
import subprocess
import sys
import tempfile

REQUIRED_TYPES = {"span", "event", "summary"}


def fail(msg: str) -> None:
    print(f"check_jsonl: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_line(lineno: int, line: str) -> dict:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as err:
        fail(f"line {lineno} is not valid JSON ({err}): {line[:200]}")
    if not isinstance(record, dict):
        fail(f"line {lineno} is not a JSON object: {line[:200]}")
    ts = record.get("ts_ns")
    if not isinstance(ts, int) or ts < 0:
        fail(f"line {lineno}: ts_ns missing or not a non-negative int: {ts!r}")
    rtype = record.get("type")
    if rtype not in REQUIRED_TYPES:
        fail(f"line {lineno}: type must be one of {sorted(REQUIRED_TYPES)}, "
             f"got {rtype!r}")
    name = record.get("name")
    if not isinstance(name, str) or not name:
        fail(f"line {lineno}: name missing or empty: {name!r}")
    if rtype == "span":
        dur = record.get("dur_ns")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(f"line {lineno}: span without non-negative dur_ns: {dur!r}")
    return record


def validate_artifact(path: str, require_convergence: bool = True) -> None:
    if not os.path.exists(path):
        fail(f"artifact missing: {path}")
    if os.path.getsize(path) == 0:
        fail(f"artifact is empty (0 bytes): {path}")
    records = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                fail(f"line {lineno} is empty")
            records.append(validate_line(lineno, line))
    if not records:
        fail("artifact is empty")

    # Per-span timing summary rows must exist and be coherent.
    span_summaries = [
        r for r in records
        if r["type"] == "summary" and r.get("attrs", {}).get("kind") == "span"
    ]
    if not span_summaries:
        fail("no summary rows of kind 'span' (emit_summary_events missing?)")
    for r in span_summaries:
        attrs = r["attrs"]
        calls = attrs.get("calls")
        if not isinstance(calls, int) or calls < 1:
            fail(f"span summary {r['name']!r}: calls must be >= 1, got {calls!r}")
        for key in ("total_ms", "p50_ms", "p95_ms"):
            if not isinstance(attrs.get(key), (int, float)):
                fail(f"span summary {r['name']!r}: missing numeric {key}")

    # Convergence curves: per attack, best_score strictly improves and the
    # query count never goes backwards.
    curves = {}
    for r in records:
        if r["type"] == "event" and r["name"] == "attack.convergence":
            attrs = r.get("attrs", {})
            attack = attrs.get("attack")
            query = attrs.get("query")
            score = attrs.get("best_score")
            if not isinstance(attack, str):
                fail(f"convergence event without attack name: {attrs!r}")
            if not isinstance(query, int) or query < 1:
                fail(f"convergence event with bad query count: {attrs!r}")
            if not isinstance(score, (int, float)):
                fail(f"convergence event with non-numeric best_score: {attrs!r}")
            curves.setdefault(attack, []).append((query, float(score)))
    if not curves and require_convergence:
        fail("no attack.convergence events in the artifact")
    for attack, points in curves.items():
        for (q0, s0), (q1, s1) in zip(points, points[1:]):
            if q1 < q0:
                continue  # a fresh run of the same attack starts a new curve
            if s1 <= s0:
                fail(f"{attack}: best_score did not improve ({s0} -> {s1})")

    n_spans = sum(1 for r in records if r["type"] == "span")
    n_curve = sum(len(p) for p in curves.values())
    print(f"check_jsonl: OK: {len(records)} lines, {n_spans} span records, "
          f"{len(span_summaries)} span summaries, {n_curve} convergence "
          f"points across {sorted(curves)}")


def main() -> None:
    argv = sys.argv[1:]
    require_convergence = True
    if argv and argv[0] == "--no-convergence":
        require_convergence = False
        argv = argv[1:]
    if len(argv) not in (2, 3):
        fail(f"usage: {sys.argv[0]} [--no-convergence] <bench-binary> "
             f"<artifact-name> [trials]")
    bench = os.path.abspath(argv[0])
    artifact_name = argv[1]
    trials = argv[2] if len(argv) == 3 else "40"

    with tempfile.TemporaryDirectory(prefix="analock_obs_") as scratch:
        env = dict(os.environ)
        env["ANALOCK_BENCH_TRIALS"] = trials
        env.pop("ANALOCK_OBS_JSONL", None)  # let the bench pick its own path
        proc = subprocess.run(
            [bench], cwd=scratch, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout[-4000:])
            fail(f"bench exited with code {proc.returncode}")
        artifact = os.path.join(scratch, artifact_name)
        if not os.path.exists(artifact):
            fail(f"bench did not write {artifact_name} "
                 f"(dir contains: {os.listdir(scratch)})")
        validate_artifact(artifact, require_convergence)


if __name__ == "__main__":
    main()
