#!/usr/bin/env python3
"""Validates the observability JSONL artifact written by a bench binary.

Runs the given bench in a scratch directory with a small trial budget
(ANALOCK_BENCH_TRIALS) so it finishes quickly, then checks that the
artifact is well-formed:

  * every line parses as a standalone JSON object;
  * every line carries the required fields: ts_ns (non-negative int),
    type ("span" | "event" | "summary"), name (non-empty string);
  * span lines carry a non-negative dur_ns;
  * there is at least one summary line of kind "span" with calls >= 1
    and both p50_ms and p95_ms present (the per-span timing summary);
  * attack.convergence events per attack have strictly increasing
    best_score and non-decreasing query counts (the convergence curve
    the attack benches are meant to record); a drop in the query count
    marks the start of a new run of the same attack and resets the curve.
    Benches that run no attacks (e.g. the fault-resilience sweep) pass
    --no-convergence to skip this requirement; convergence events that
    do appear are still validated.

A missing artifact, a zero-byte artifact, or an artifact with no records
all fail with a non-zero exit code; parse errors report the offending
line number.

The same tool also validates the BENCH_<name>.json trajectory artifact
written by the profiling harness (src/obs/prof/): schema name + version,
environment capture, per-case robust stats, monotone per-rep timestamps,
non-negative counters, and span-profile coherence (self <= total).

Usage:
  check_jsonl.py [--no-convergence] [--expect-bench-json NAME]
                 <bench-binary> <artifact-name> [trials]
  check_jsonl.py --bench-json FILE [FILE...]

The first form runs the bench in a scratch directory and validates its
JSONL event record (and, with --expect-bench-json, the BENCH json it
wrote there too). The second form validates existing BENCH json files
in place (used for the checked-in baselines). Exit code 0 = valid.
"""

import json
import math
import os
import subprocess
import sys
import tempfile

REQUIRED_TYPES = {"span", "event", "summary"}


def fail(msg: str) -> None:
    print(f"check_jsonl: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_line(lineno: int, line: str) -> dict:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as err:
        fail(f"line {lineno} is not valid JSON ({err}): {line[:200]}")
    if not isinstance(record, dict):
        fail(f"line {lineno} is not a JSON object: {line[:200]}")
    ts = record.get("ts_ns")
    if not isinstance(ts, int) or ts < 0:
        fail(f"line {lineno}: ts_ns missing or not a non-negative int: {ts!r}")
    rtype = record.get("type")
    if rtype not in REQUIRED_TYPES:
        fail(f"line {lineno}: type must be one of {sorted(REQUIRED_TYPES)}, "
             f"got {rtype!r}")
    name = record.get("name")
    if not isinstance(name, str) or not name:
        fail(f"line {lineno}: name missing or empty: {name!r}")
    if rtype == "span":
        dur = record.get("dur_ns")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(f"line {lineno}: span without non-negative dur_ns: {dur!r}")
    return record


def validate_artifact(path: str, require_convergence: bool = True) -> None:
    if not os.path.exists(path):
        fail(f"artifact missing: {path}")
    if os.path.getsize(path) == 0:
        fail(f"artifact is empty (0 bytes): {path}")
    records = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                fail(f"line {lineno} is empty")
            records.append(validate_line(lineno, line))
    if not records:
        fail("artifact is empty")

    # Per-span timing summary rows must exist and be coherent.
    span_summaries = [
        r for r in records
        if r["type"] == "summary" and r.get("attrs", {}).get("kind") == "span"
    ]
    if not span_summaries:
        fail("no summary rows of kind 'span' (emit_summary_events missing?)")
    for r in span_summaries:
        attrs = r["attrs"]
        calls = attrs.get("calls")
        if not isinstance(calls, int) or calls < 1:
            fail(f"span summary {r['name']!r}: calls must be >= 1, got {calls!r}")
        for key in ("total_ms", "p50_ms", "p95_ms"):
            if not isinstance(attrs.get(key), (int, float)):
                fail(f"span summary {r['name']!r}: missing numeric {key}")

    # Convergence curves: per attack, best_score strictly improves and the
    # query count never goes backwards.
    curves = {}
    for r in records:
        if r["type"] == "event" and r["name"] == "attack.convergence":
            attrs = r.get("attrs", {})
            attack = attrs.get("attack")
            query = attrs.get("query")
            score = attrs.get("best_score")
            if not isinstance(attack, str):
                fail(f"convergence event without attack name: {attrs!r}")
            if not isinstance(query, int) or query < 1:
                fail(f"convergence event with bad query count: {attrs!r}")
            if not isinstance(score, (int, float)):
                fail(f"convergence event with non-numeric best_score: {attrs!r}")
            curves.setdefault(attack, []).append((query, float(score)))
    if not curves and require_convergence:
        fail("no attack.convergence events in the artifact")
    for attack, points in curves.items():
        for (q0, s0), (q1, s1) in zip(points, points[1:]):
            if q1 < q0:
                continue  # a fresh run of the same attack starts a new curve
            if s1 <= s0:
                fail(f"{attack}: best_score did not improve ({s0} -> {s1})")

    n_spans = sum(1 for r in records if r["type"] == "span")
    n_curve = sum(len(p) for p in curves.values())
    print(f"check_jsonl: OK: {len(records)} lines, {n_spans} span records, "
          f"{len(span_summaries)} span summaries, {n_curve} convergence "
          f"points across {sorted(curves)}")


# --------------------------------------------------- BENCH_*.json schema

BENCH_SCHEMA = "analock-bench"
BENCH_SCHEMA_VERSION = 1
BENCH_ENV_KEYS = (
    "git_sha", "compiler", "flags", "cpu", "counter_mode",
    "counter_degrade_reason", "trials_budget", "reps_override", "warmup",
    "min_time_ms", "max_reps",
)
STATS_KEYS = ("n", "min", "max", "mean", "median", "mad", "p95")
COUNTER_KEYS = ("cycles", "instructions", "branch_misses",
                "cache_references", "cache_misses", "task_clock_ns")


def check_stats(where: str, stats) -> None:
    if not isinstance(stats, dict):
        fail(f"{where}: stats must be an object, got {type(stats).__name__}")
    for key in STATS_KEYS:
        value = stats.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(f"{where}: stats key {key!r} missing or non-numeric: "
                 f"{value!r}")
    if stats["n"] < 1:
        fail(f"{where}: stats n must be >= 1, got {stats['n']!r}")
    if not stats["min"] <= stats["median"] <= stats["max"]:
        fail(f"{where}: expected min <= median <= max, got "
             f"{stats['min']} / {stats['median']} / {stats['max']}")
    for key in ("min", "max", "median", "mad", "p95"):
        if stats[key] < 0:
            fail(f"{where}: stats key {key!r} is negative: {stats[key]!r}")


def check_case(bench: str, case) -> None:
    name = case.get("name") if isinstance(case, dict) else None
    if not isinstance(name, str) or not name:
        fail(f"{bench}: case without a non-empty name: {case!r}")
    where = f"{bench}:{name}"
    warmups = case.get("warmups")
    if not isinstance(warmups, int) or warmups < 0:
        fail(f"{where}: warmups must be a non-negative int: {warmups!r}")
    ops = case.get("ops_per_rep")
    if not isinstance(ops, (int, float)) or ops <= 0:
        fail(f"{where}: ops_per_rep must be positive: {ops!r}")
    check_stats(f"{where}.wall_ms", case.get("wall_ms"))

    # Optional case annotations (e.g. bench_batch_eval records lanes and
    # thread count): a flat object of string keys to finite numbers.
    notes = case.get("notes")
    if notes is not None:
        if not isinstance(notes, dict):
            fail(f"{where}: notes must be an object: {notes!r}")
        for nkey, nval in notes.items():
            if not isinstance(nkey, str) or not nkey:
                fail(f"{where}: notes key must be a non-empty string: "
                     f"{nkey!r}")
            if (not isinstance(nval, (int, float)) or isinstance(nval, bool)
                    or not math.isfinite(nval)):
                fail(f"{where}: notes[{nkey!r}] must be a finite number: "
                     f"{nval!r}")

    counters = case.get("counters")
    if not isinstance(counters, dict):
        fail(f"{where}: counters must be an object (may be empty)")
    for cname, cstats in counters.items():
        if cname not in COUNTER_KEYS:
            fail(f"{where}: unknown counter {cname!r}")
        check_stats(f"{where}.counters.{cname}", cstats)

    reps = case.get("reps")
    if not isinstance(reps, list) or not reps:
        fail(f"{where}: reps must be a non-empty list")
    if len(reps) != case["wall_ms"]["n"]:
        fail(f"{where}: wall_ms.n={case['wall_ms']['n']} but "
             f"{len(reps)} reps recorded")
    prev_t = -1
    for i, rep in enumerate(reps):
        if not isinstance(rep, dict):
            fail(f"{where}: rep {i} is not an object")
        t_ns = rep.get("t_ns")
        if not isinstance(t_ns, int) or t_ns < 0:
            fail(f"{where}: rep {i} t_ns missing or negative: {t_ns!r}")
        if t_ns < prev_t:
            fail(f"{where}: rep timestamps not monotone "
                 f"({prev_t} -> {t_ns} at rep {i})")
        prev_t = t_ns
        wall = rep.get("wall_ms")
        if not isinstance(wall, (int, float)) or wall < 0:
            fail(f"{where}: rep {i} wall_ms missing or negative: {wall!r}")
        for cname in COUNTER_KEYS:
            if cname in rep and (not isinstance(rep[cname], int)
                                 or rep[cname] < 0):
                fail(f"{where}: rep {i} counter {cname!r} must be a "
                     f"non-negative int: {rep[cname]!r}")


def check_profile(bench: str, profile) -> int:
    if not isinstance(profile, dict):
        fail(f"{bench}: profile must be an object")
    spans = profile.get("spans")
    if not isinstance(spans, list):
        fail(f"{bench}: profile.spans must be a list")
    for span in spans:
        path = span.get("path") if isinstance(span, dict) else None
        if not isinstance(path, str) or not path:
            fail(f"{bench}: profile span without a path: {span!r}")
        where = f"{bench}:profile:{path}"
        name = span.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where}: span name missing")
        if not path.endswith(name):
            fail(f"{where}: path does not end with name {name!r}")
        depth = span.get("depth")
        if not isinstance(depth, int) or depth < 0:
            fail(f"{where}: depth must be a non-negative int: {depth!r}")
        calls = span.get("calls")
        if not isinstance(calls, int) or calls < 1:
            fail(f"{where}: calls must be >= 1: {calls!r}")
        total = span.get("total_ms")
        self_ms = span.get("self_ms")
        for key, value in (("total_ms", total), ("self_ms", self_ms)):
            if not isinstance(value, (int, float)) or value < 0:
                fail(f"{where}: {key} missing or negative: {value!r}")
        # Allow a hair of float slack from the ns -> ms conversion.
        if self_ms > total + 1e-6:
            fail(f"{where}: self_ms {self_ms} exceeds total_ms {total}")
    return len(spans)


def validate_bench_json(path: str) -> None:
    if not os.path.exists(path):
        fail(f"bench json missing: {path}")
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            fail(f"{path} is not valid JSON: {err}")
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    if doc.get("schema") != BENCH_SCHEMA:
        fail(f"{path}: schema must be {BENCH_SCHEMA!r}, "
             f"got {doc.get('schema')!r}")
    if doc.get("schema_version") != BENCH_SCHEMA_VERSION:
        fail(f"{path}: schema_version must be {BENCH_SCHEMA_VERSION}, "
             f"got {doc.get('schema_version')!r}")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        fail(f"{path}: bench name missing")
    env = doc.get("env")
    if not isinstance(env, dict):
        fail(f"{path}: env capture missing")
    for key in BENCH_ENV_KEYS:
        if key not in env:
            fail(f"{path}: env key {key!r} missing")
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        fail(f"{path}: cases must be a non-empty list")
    for case in cases:
        check_case(bench, case)
    n_spans = check_profile(bench, doc.get("profile"))
    print(f"check_jsonl: OK: {path}: bench {bench!r}, {len(cases)} cases, "
          f"{n_spans} profile spans, counter mode "
          f"{env.get('counter_mode')!r}")


def main() -> None:
    argv = sys.argv[1:]
    if argv and argv[0] == "--bench-json":
        if len(argv) < 2:
            fail(f"usage: {sys.argv[0]} --bench-json FILE [FILE...]")
        for path in argv[1:]:
            validate_bench_json(path)
        return

    require_convergence = True
    expect_bench_json = None
    while argv:
        if argv[0] == "--no-convergence":
            require_convergence = False
            argv = argv[1:]
        elif argv[0] == "--expect-bench-json" and len(argv) >= 2:
            expect_bench_json = argv[1]
            argv = argv[2:]
        else:
            break
    if len(argv) not in (2, 3):
        fail(f"usage: {sys.argv[0]} [--no-convergence] "
             f"[--expect-bench-json NAME] <bench-binary> "
             f"<artifact-name> [trials]")
    bench = os.path.abspath(argv[0])
    artifact_name = argv[1]
    trials = argv[2] if len(argv) == 3 else "40"

    with tempfile.TemporaryDirectory(prefix="analock_obs_") as scratch:
        env = dict(os.environ)
        env["ANALOCK_BENCH_TRIALS"] = trials
        env.pop("ANALOCK_OBS_JSONL", None)  # let the bench pick its own path
        env.pop("ANALOCK_BENCH_JSON", None)
        proc = subprocess.run(
            [bench], cwd=scratch, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout[-4000:])
            fail(f"bench exited with code {proc.returncode}")
        artifact = os.path.join(scratch, artifact_name)
        if not os.path.exists(artifact):
            fail(f"bench did not write {artifact_name} "
                 f"(dir contains: {os.listdir(scratch)})")
        validate_artifact(artifact, require_convergence)
        if expect_bench_json is not None:
            validate_bench_json(os.path.join(scratch, expect_bench_json))


if __name__ == "__main__":
    main()
