#!/usr/bin/env python3
"""analock-lint: domain-specific static analysis for the analock tree.

The whole defense reproduced here rests on two implementation invariants
that ordinary compilers never check:

  1. SECRET HYGIENE -- the 64-bit configuration word (Key64), PUF id
     keys, and wrapped/decrypted activation material must never flow
     into observability sinks (obs:: events, metrics, JSONL, stream
     output), and must never be compared with an early-exit comparison
     (`==`, `!=`); secret comparisons go through analock::ct_equal
     (src/lock/ct_equal.h). Library calls such as memcmp/strcmp are
     analock-verify's job (`ct-leak-call`), which has real dataflow.
  2. DETERMINISM -- every stochastic element draws from the seeded
     sim::Rng streams. Ambient entropy (rand(), std::random_device,
     time-seeded engines, wall-clock reads) and iteration-order-
     dependent unordered containers silently break the reproducibility
     contract of the seeded FaultPlan / calibration pipeline.

plus a third family that cross-checks the key-layout tables:

  3. LAYOUT CONSISTENCY -- BitRange fields parsed out of key_layout-
     style headers must fit the 64-bit word, be pairwise disjoint, and
     sum to exactly 64 bits; literal shifts must not overflow their
     operand width.

and a fourth that guards the bit-exactness contract at the build level:

  4. BUILD HYGIENE -- the batch SNR engine promises results that are
     bit-identical to the scalar path for any thread count, which any
     value-unsafe FP mode silently voids. Neither sources nor CMake
     files may enable -ffast-math / -funsafe-math-optimizations /
     -ffp-contract=fast / /fp:fast, and no translation unit may flip
     `#pragma STDC FP_CONTRACT ON`. CMake files (CMakeLists.txt,
     *.cmake) are scanned for this rule only.

Rules
-----
  secret-flow           key material reaches a logging/metrics sink
  secret-compare        ==/!= on key material (use ct_equal; memcmp
                        is covered by analock-verify's ct-leak-call)
  determinism-rng       ambient RNG source (rand, random_device, ...)
  determinism-clock     ambient wall-clock read (steady_clock::now, ...)
  determinism-unordered std::unordered_* container (iteration order)
  layout-range          BitRange falls outside the 64-bit word
  layout-overlap        two layout fields overlap
  layout-sum            layout field widths do not sum to 64
  shift-overflow        literal shift exceeds the operand width
  build-hygiene         value-unsafe FP flag or FP_CONTRACT pragma

Suppression
-----------
Inline, scoped to the same line or the line immediately below:

    // analock-lint: allow(secret-compare)
    if (cand == key) continue;        // attacker-side material

or path-scoped entries in tools/analock_lint/allowlist.conf:

    # <rule-or-*> <repo-relative-glob>   [rationale...]
    secret-flow examples/*              demonstrators print the key

Usage
-----
    analock_lint.py --root REPO [--allowlist FILE] [PATHS...]
    analock_lint.py --self-test FIXTURE_DIR

Exit status: 0 clean, 1 findings (or failed self-test), 2 usage error.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import multiprocessing
import os
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

RULES = (
    "secret-flow",
    "secret-compare",
    "determinism-rng",
    "determinism-clock",
    "determinism-unordered",
    "layout-range",
    "layout-overlap",
    "layout-sum",
    "shift-overflow",
    "build-hygiene",
)

SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx", ".h", ".hpp"}
CMAKE_SUFFIXES = {".cmake"}


def is_cmake_file(path: Path) -> bool:
    return path.name == "CMakeLists.txt" or path.suffix in CMAKE_SUFFIXES
EXCLUDED_DIR_NAMES = {"build", "lint_fixtures", "verify_fixtures", ".git"}

# ---------------------------------------------------------------------------
# Findings and suppression


@dataclass
class Finding:
    path: Path
    line: int  # 1-based
    rule: str
    message: str

    def render(self, root: Path) -> str:
        try:
            rel = self.path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Allowlist:
    """Path-scoped rule suppressions loaded from allowlist.conf."""

    entries: list[tuple[str, str]] = field(default_factory=list)

    @staticmethod
    def load(path: Path) -> "Allowlist":
        allow = Allowlist()
        for raw in path.read_text(encoding="utf-8").splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}: malformed allowlist line: {raw!r}")
            rule, glob = parts[0], parts[1]
            if rule != "*" and rule not in RULES:
                raise ValueError(f"{path}: unknown rule {rule!r} in: {raw!r}")
            allow.entries.append((rule, glob))
        return allow

    def permits(self, rule: str, rel_path: str) -> bool:
        posix = rel_path.replace("\\", "/")
        for entry_rule, glob in self.entries:
            if entry_rule in ("*", rule) and fnmatch.fnmatch(posix, glob):
                return True
        return False


INLINE_ALLOW_RE = re.compile(r"analock-lint:\s*allow\(([^)]*)\)")


def inline_allows(original_lines: list[str]) -> dict[int, set[str]]:
    """Maps 1-based line numbers to the rules suppressed on that line.

    An allow comment covers its own line and the line directly below, so
    a comment-only line shields the statement it annotates.
    """
    allows: dict[int, set[str]] = {}
    for i, text in enumerate(original_lines, start=1):
        m = INLINE_ALLOW_RE.search(text)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        for covered in (i, i + 1):
            allows.setdefault(covered, set()).update(rules)
    return allows


# ---------------------------------------------------------------------------
# Lexing helpers: blank out comments and string/char literals while keeping
# the text the same length, so offsets and line numbers stay aligned.


def strip_code(text: str) -> str:
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == "'" and i > 0 and text[i - 1].isalnum() and i + 1 < n and (
            text[i + 1].isalnum()
        ):
            # C++14 digit separator (0xA5A5'5A5A), not a char literal.
            i += 1
        elif c in "\"'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out[i] = " "
                    if text[i + 1] != "\n":
                        out[i + 1] = " "
                    i += 2
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def line_of(offset: int, line_starts: list[int]) -> int:
    """1-based line number of a character offset (binary search)."""
    lo, hi = 0, len(line_starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if line_starts[mid] <= offset:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def balanced_args(text: str, open_paren: int) -> tuple[str, int]:
    """Returns (argument text, end offset) for the call whose '(' is at
    open_paren in comment/string-stripped text."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : i], i
    return text[open_paren + 1 :], len(text)


# ---------------------------------------------------------------------------
# Rule family 1: secret hygiene

# Identifiers that carry key material. Deliberately name-based: the repo's
# own naming convention is the taint oracle (config_key, id_key, wrapped
# keys, ...), plus the Key64 accessors that expose raw bits anywhere.
SECRET_ID_RE = re.compile(
    r"\b\w*(?:secret|config_key|user_key|id_key|wrapped_key|chip_key|"
    r"private_key|true_key|keypair|puf_key|key_bits|key_word)\w*\b"
)
SECRET_ACCESSOR_RE = re.compile(r"(?:\.|->)\s*(?:bits|to_hex)\s*\(")
KEY_TYPE_RE = re.compile(r"\bKey64\b|\bWrappedKey\b")


def taint_in(expr: str) -> str | None:
    m = SECRET_ID_RE.search(expr)
    if m:
        return m.group(0)
    m = SECRET_ACCESSOR_RE.search(expr)
    if m:
        return m.group(0).replace(" ", "")
    return None


SINK_CALL_RE = re.compile(
    r"\b(?:obs\s*::\s*(?:event|count|set_gauge|observe)|"
    r"(?:std\s*::\s*)?(?:printf|fprintf|snprintf|sprintf)|"
    r"\w+(?:\.|->)emit)\s*\("
)

STREAM_TARGET_RE = re.compile(
    r"\b(?:std\s*::\s*(?:cout|cerr|clog)|o?stream\b\s*\w*|"
    r"ostringstream\s*\w*|stringstream\s*\w*)[^;]{0,160}?<<"
)


def check_secret_flow(stripped: str, line_starts: list[int], path: Path) -> list[Finding]:
    findings: list[Finding] = []
    for m in SINK_CALL_RE.finditer(stripped):
        args, _ = balanced_args(stripped, m.end() - 1)
        tainted = taint_in(args)
        if tainted:
            findings.append(
                Finding(
                    path,
                    line_of(m.start(), line_starts),
                    "secret-flow",
                    f"key material ({tainted}) passed to sink "
                    f"{m.group(0).rstrip('(').strip()}; secrets must not "
                    "reach obs/log output",
                )
            )
    # Stream inserts: scan statement-wise so chained << across lines are
    # seen whole.
    for stmt, offset in statements(stripped):
        if "<<" not in stmt:
            continue
        if not STREAM_TARGET_RE.search(stmt):
            continue
        tainted = taint_in(stmt)
        if tainted:
            findings.append(
                Finding(
                    path,
                    line_of(offset, line_starts),
                    "secret-flow",
                    f"key material ({tainted}) inserted into an output "
                    "stream; secrets must not reach obs/log output",
                )
            )
    return findings


def statements(stripped: str):
    """Yields (statement text, start offset) split on top-level ';' and '{'/'}'."""
    start = 0
    depth = 0
    for i, c in enumerate(stripped):
        if c == "(":
            depth += 1
        elif c == ")":
            depth = max(0, depth - 1)
        elif c in ";{}" and depth == 0:
            stmt = stripped[start:i]
            if stmt.strip():
                yield stmt, start + (len(stmt) - len(stmt.lstrip()))
            start = i + 1
    tail = stripped[start:]
    if tail.strip():
        yield tail, start + (len(tail) - len(tail.lstrip()))


CMP_RE = re.compile(r"(?<![<>=!&|+\-*/%^])(==|!=)(?!=)")
OPERAND_TAIL_RE = re.compile(r"[\w\)\]\.\>:]+\s*$")
OPERAND_HEAD_RE = re.compile(r"^\s*[!~]*[\w\.\(:]+(?:(?:\.|->|::)\w+|\(\)|\[[^\]]{0,40}\])*")
def check_secret_compare(stripped: str, line_starts: list[int], path: Path) -> list[Finding]:
    findings: list[Finding] = []
    for m in CMP_RE.finditer(stripped):
        left_window = stripped[max(0, m.start() - 120) : m.start()]
        right_window = stripped[m.end() : m.end() + 120]
        left = OPERAND_TAIL_RE.search(left_window)
        right = OPERAND_HEAD_RE.search(right_window)
        operand_text = (left.group(0) if left else "") + " " + (
            right.group(0) if right else ""
        )
        tainted = taint_in(operand_text)
        if tainted:
            findings.append(
                Finding(
                    path,
                    line_of(m.start(), line_starts),
                    "secret-compare",
                    f"early-exit {m.group(1)} on key material ({tainted}); "
                    "use analock::ct_equal (lock/ct_equal.h)",
                )
            )
    # memcmp/strcmp-family probes on key material are deliberately NOT
    # flagged here: analock-verify's `ct-leak-call` rule owns known
    # variable-time library callees, with real dataflow behind the
    # operand check (see tools/README.md for the division of labor).
    return findings


# ---------------------------------------------------------------------------
# Rule family 3 (determinism)

DETERMINISM_PATTERNS: list[tuple[str, re.Pattern[str], str]] = [
    (
        "determinism-rng",
        re.compile(r"\bstd\s*::\s*random_device\b|(?<!\w)(?<!::)random_device\b"),
        "std::random_device is ambient entropy; fork a seeded sim::Rng stream",
    ),
    (
        "determinism-rng",
        re.compile(r"(?<![\w:.])s?rand\s*\(|\bstd\s*::\s*s?rand\s*\("),
        "rand()/srand() break seeded reproducibility; use sim::Rng",
    ),
    (
        "determinism-rng",
        re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
        "time() used as seed material; seeds must be explicit and named",
    ),
    (
        "determinism-rng",
        re.compile(r"\b(?:default_random_engine|minstd_rand0?|mt19937(?:_64)?)\s*(?:\{\s*\}|\(\s*\))"),
        "default-seeded <random> engine; derive the seed from sim::Rng::fork",
    ),
    (
        "determinism-rng",
        re.compile(
            r"\b(?:std\s*::\s*)?(?:mt19937(?:_64)?|default_random_engine|"
            r"minstd_rand0?)\s+\w+\s*;"
        ),
        "default-constructed <random> engine declaration; seed it from a "
        "named sim::Rng stream (Rng::fork)",
    ),
    (
        "determinism-clock",
        re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b"),
        "ambient clock read; inject an obs::Clock so runs replay bit-exactly",
    ),
    (
        "determinism-unordered",
        re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\b"),
        "unordered container iteration order is run-dependent; use std::map/"
        "std::set or sort before iterating",
    ),
]


SHUFFLE_SAMPLE_RE = re.compile(r"\bstd\s*::\s*(shuffle|sample)\s*\(")

# Engine arguments derived from the seeded simulation streams mention the
# stream object or an explicit fork/seed; anything else is ambient.
SIM_DERIVED_RE = re.compile(r"\brng\b|Rng|fork|\bseed\w*\b|\bgen\w*_rng\b", re.IGNORECASE)


def split_call_args(args: str) -> list[str]:
    """Splits an argument string on top-level commas ((), [], {}, <>)."""
    out: list[str] = []
    depth = 0
    current = []
    for c in args:
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth = max(0, depth - 1)
        elif c == "," and depth == 0:
            out.append("".join(current).strip())
            current = []
            continue
        current.append(c)
    tail = "".join(current).strip()
    if tail:
        out.append(tail)
    return out


def check_shuffle_sample(stripped: str, line_starts: list[int], path: Path) -> list[Finding]:
    """std::shuffle / std::sample draw from their last argument (the URBG):
    that engine must come from a seeded sim::Rng stream."""
    findings: list[Finding] = []
    for m in SHUFFLE_SAMPLE_RE.finditer(stripped):
        args, _ = balanced_args(stripped, m.end() - 1)
        parts = split_call_args(args)
        if not parts:
            continue
        urbg = parts[-1]
        if SIM_DERIVED_RE.search(urbg):
            continue
        findings.append(
            Finding(
                path,
                line_of(m.start(), line_starts),
                "determinism-rng",
                f"std::{m.group(1)} draws from engine '{urbg}' that is not "
                "derived from a seeded sim::Rng stream",
            )
        )
    return findings


def check_determinism(stripped: str, line_starts: list[int], path: Path) -> list[Finding]:
    findings: list[Finding] = []
    for rule, pattern, message in DETERMINISM_PATTERNS:
        for m in pattern.finditer(stripped):
            findings.append(
                Finding(path, line_of(m.start(), line_starts), rule, message)
            )
    findings += check_shuffle_sample(stripped, line_starts, path)
    return findings


# ---------------------------------------------------------------------------
# Rule family 2 (layout consistency)

BITRANGE_DECL_RE = re.compile(
    r"\bBitRange\s+(\w+)\s*\{\s*(\d+)\s*u?\s*,\s*(\d+)\s*u?\s*\}"
)
BITRANGE_LITERAL_RE = re.compile(r"\bBitRange\s*\{\s*(\d+)\s*u?\s*,\s*(\d+)\s*u?\s*\}")
MODE_BIT_RE = re.compile(r"\bconstexpr\s+unsigned\s+(\w+)\s*=\s*(\d+)\s*;")
WORD_BITS = 64


def range_mask(lsb: int, width: int) -> int:
    return (((1 << width) - 1) << lsb) & ((1 << WORD_BITS) - 1)


def is_layout_file(path: Path) -> bool:
    return "layout" in path.name.lower()


def check_layout(stripped: str, line_starts: list[int], path: Path) -> list[Finding]:
    findings: list[Finding] = []

    # Literal BitRange construction anywhere must fit the word.
    for m in BITRANGE_LITERAL_RE.finditer(stripped):
        lsb, width = int(m.group(1)), int(m.group(2))
        if width == 0 or lsb >= WORD_BITS or lsb + width > WORD_BITS:
            findings.append(
                Finding(
                    path,
                    line_of(m.start(), line_starts),
                    "layout-range",
                    f"BitRange{{{lsb}, {width}}} does not fit the 64-bit "
                    "word (shift UB / silently dropped bits)",
                )
            )

    if not is_layout_file(path):
        return findings

    # Named fields + single mode bits of a key-layout table. Constants whose
    # name ends in 'Bits' are totals (kKeyBits), not positions.
    fields: list[tuple[str, int, int, int]] = []  # (name, lsb, width, offset)
    for m in BITRANGE_DECL_RE.finditer(stripped):
        fields.append((m.group(1), int(m.group(2)), int(m.group(3)), m.start()))
    bits: list[tuple[str, int, int]] = []  # (name, bit, offset)
    for m in MODE_BIT_RE.finditer(stripped):
        if m.group(1).endswith("Bits"):
            continue
        bits.append((m.group(1), int(m.group(2)), m.start()))

    if not fields and not bits:
        return findings

    for name, lsb, width, offset in fields:
        if width == 0 or lsb >= WORD_BITS or lsb + width > WORD_BITS:
            findings.append(
                Finding(
                    path,
                    line_of(offset, line_starts),
                    "layout-range",
                    f"field {name} [{lsb}, {lsb + width}) falls outside the "
                    "64-bit key word",
                )
            )
    for name, bit, offset in bits:
        if bit >= WORD_BITS:
            findings.append(
                Finding(
                    path,
                    line_of(offset, line_starts),
                    "layout-range",
                    f"mode bit {name} = {bit} falls outside the 64-bit key word",
                )
            )

    # Pairwise overlap (only for in-range entries: out-of-range masks alias).
    placed: list[tuple[str, int, int]] = []  # (name, mask, offset)
    for name, lsb, width, offset in fields:
        if width > 0 and lsb + width <= WORD_BITS:
            placed.append((name, range_mask(lsb, width), offset))
    for name, bit, offset in bits:
        if bit < WORD_BITS:
            placed.append((name, 1 << bit, offset))
    for i, (name_a, mask_a, _) in enumerate(placed):
        for name_b, mask_b, offset_b in placed[i + 1 :]:
            if mask_a & mask_b:
                findings.append(
                    Finding(
                        path,
                        line_of(offset_b, line_starts),
                        "layout-overlap",
                        f"fields {name_a} and {name_b} overlap in the key word",
                    )
                )

    total = sum(width for _, _, width, _ in fields) + len(bits)
    if total != WORD_BITS:
        findings.append(
            Finding(
                path,
                line_of(fields[0][3] if fields else bits[0][2], line_starts),
                "layout-sum",
                f"layout field widths sum to {total}, expected {WORD_BITS}",
            )
        )
    return findings


SHIFT_RE = re.compile(r"(?<![\w.])(\d+)([uUlL]*)\s*<<\s*(\d+)\b")


def check_shift_overflow(stripped: str, line_starts: list[int], path: Path) -> list[Finding]:
    findings: list[Finding] = []
    for m in SHIFT_RE.finditer(stripped):
        base, suffix, shift = int(m.group(1)), m.group(2).lower(), int(m.group(3))
        # LP64: any 'l' suffix widens to 64 bits, as does a 64-bit literal.
        wide = "l" in suffix or base > 0xFFFFFFFF
        limit = 63 if wide else 31
        if shift < 32:
            continue
        if shift > limit or (base.bit_length() - 1 + shift) > limit:
            findings.append(
                Finding(
                    path,
                    line_of(m.start(), line_starts),
                    "shift-overflow",
                    f"literal shift {m.group(1)}{suffix} << {shift} overflows "
                    f"a {limit + 1}-bit operand (UB); widen the operand "
                    "(e.g. std::uint64_t{1} << n) or reduce the shift",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Build hygiene (value-unsafe FP modes)

UNSAFE_FP_FLAG_RE = re.compile(
    r"-ffast-math|-funsafe-math-optimizations|-ffp-contract=fast"
    r"|[/-]fp:fast|-Ofast\b"
)
FP_CONTRACT_PRAGMA_RE = re.compile(
    r"#\s*pragma\s+STDC\s+FP_CONTRACT\s+ON"
)


def check_build_hygiene(
    stripped: str, line_starts: list[int], path: Path
) -> list[Finding]:
    """Flags FP modes that void the batch engine's bit-exactness contract.

    In C++ sources only the pragma can take effect (flags in comments or
    string literals arrive here blanked by strip_code); in CMake files the
    flag spellings themselves are the hazard.
    """
    findings = []
    patterns = (
        [UNSAFE_FP_FLAG_RE] if is_cmake_file(path) else [FP_CONTRACT_PRAGMA_RE]
    )
    for pattern in patterns:
        for m in pattern.finditer(stripped):
            findings.append(
                Finding(
                    path,
                    line_of(m.start(), line_starts),
                    "build-hygiene",
                    f"'{m.group(0)}' reassociates/contracts floating point, "
                    "breaking the batch engine's bit-exactness contract "
                    "(results would differ from the scalar path and across "
                    "thread counts)",
                )
            )
    return findings


def strip_cmake(text: str) -> str:
    """Blanks `#` comments in CMake text, preserving offsets and newlines."""
    out = list(text)
    in_comment = False
    for i, c in enumerate(text):
        if c == "\n":
            in_comment = False
            continue
        if c == "#":
            in_comment = True
        if in_comment:
            out[i] = " "
    return "".join(out)


# ---------------------------------------------------------------------------
# Driver


def lint_file(path: Path) -> list[Finding]:
    text = path.read_text(encoding="utf-8", errors="replace")
    stripped = strip_cmake(text) if is_cmake_file(path) else strip_code(text)
    original_lines = text.splitlines()
    line_starts = [0]
    for i, c in enumerate(stripped):
        if c == "\n":
            line_starts.append(i + 1)

    findings: list[Finding] = []
    if is_cmake_file(path):
        findings += check_build_hygiene(stripped, line_starts, path)
    else:
        findings += check_secret_flow(stripped, line_starts, path)
        findings += check_secret_compare(stripped, line_starts, path)
        findings += check_determinism(stripped, line_starts, path)
        findings += check_layout(stripped, line_starts, path)
        findings += check_shift_overflow(stripped, line_starts, path)
        findings += check_build_hygiene(stripped, line_starts, path)

    allows = inline_allows(original_lines)
    kept = []
    for f in findings:
        if f.rule in allows.get(f.line, set()):
            continue
        kept.append(f)
    # Deduplicate identical (line, rule) hits from overlapping patterns.
    seen: set[tuple[int, str, str]] = set()
    unique = []
    for f in kept:
        key = (f.line, f.rule, f.message)
        if key in seen:
            continue
        seen.add(key)
        unique.append(f)
    return unique


def iter_sources(roots: list[Path]) -> list[Path]:
    out: list[Path] = []
    for root in roots:
        if root.is_file():
            if root.suffix in SOURCE_SUFFIXES:
                out.append(root)
            continue
        for path in sorted(root.rglob("*")):
            if not path.is_file():
                continue
            if path.suffix not in SOURCE_SUFFIXES and not is_cmake_file(path):
                continue
            parts = set(path.parts)
            if parts & EXCLUDED_DIR_NAMES:
                continue
            if any(p.startswith("build") for p in path.parts):
                continue
            out.append(path)
    return out


def rel_to_root(path: Path, root: Path) -> str:
    try:
        return str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        return str(path)


def run_tree(
    root: Path,
    paths: list[str],
    allowlist_path: Path | None,
    jobs: int = 1,
    output_format: str = "text",
) -> int:
    allow = Allowlist()
    if allowlist_path is not None and allowlist_path.exists():
        allow = Allowlist.load(allowlist_path)
    roots = [root / p for p in paths] if paths else [root]
    files = iter_sources(roots)
    if not files:
        print("analock-lint: no source files found", file=sys.stderr)
        return 2

    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs > 1 and len(files) > 1:
        # lint_file is pure (path in, findings out), so files fan out to a
        # process pool; results return in submission order, keeping output
        # identical to the serial scan.
        with multiprocessing.Pool(processes=min(jobs, len(files))) as pool:
            per_file = pool.map(lint_file, files)
    else:
        per_file = [lint_file(path) for path in files]

    all_findings: list[Finding] = []
    for path, findings in zip(files, per_file):
        rel = rel_to_root(path, root)
        for f in findings:
            if allow.permits(f.rule, rel):
                continue
            all_findings.append(f)

    if output_format == "json":
        payload = {
            "tool": "analock-lint",
            "scanned_files": len(files),
            "findings": [
                {
                    "file": rel_to_root(f.path, root),
                    "line": f.line,
                    "rule": f.rule,
                    "message": f.message,
                }
                for f in all_findings
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for f in all_findings:
            print(f.render(root))
        print(
            f"analock-lint: scanned {len(files)} files, "
            f"{len(all_findings)} finding(s)"
        )
    return 1 if all_findings else 0


EXPECT_RE = re.compile(r"(?://|#)\s*expect:\s*([\w\-, ]+)")


def run_self_test(fixture_dir: Path) -> int:
    """Golden-file mode: every `// expect: rule` annotation must be matched
    by a finding of that rule on the same or the following line, and no
    fixture may produce findings it does not expect."""
    files = sorted(
        p
        for p in fixture_dir.iterdir()
        if p.is_file() and (p.suffix in SOURCE_SUFFIXES or is_cmake_file(p))
    )
    if not files:
        print(f"analock-lint: no fixtures in {fixture_dir}", file=sys.stderr)
        return 2
    failures = 0
    total_expected = 0
    for path in files:
        text = path.read_text(encoding="utf-8")
        expected: list[tuple[int, str]] = []  # (line, rule)
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = EXPECT_RE.search(line)
            if not m:
                continue
            for rule in (r.strip() for r in m.group(1).split(",")):
                if rule not in RULES:
                    print(f"FAIL {path.name}: unknown rule in expect: {rule}")
                    failures += 1
                    continue
                expected.append((lineno, rule))
        findings = lint_file(path)
        matched_findings: set[int] = set()
        for lineno, rule in expected:
            total_expected += 1
            hit = next(
                (
                    i
                    for i, f in enumerate(findings)
                    if i not in matched_findings
                    and f.rule == rule
                    and f.line in (lineno, lineno + 1)
                ),
                None,
            )
            if hit is None:
                print(
                    f"FAIL {path.name}:{lineno}: expected a {rule} finding, "
                    "linter reported none"
                )
                failures += 1
            else:
                matched_findings.add(hit)
        for i, f in enumerate(findings):
            if i not in matched_findings:
                print(
                    f"FAIL {path.name}: unexpected finding "
                    f"{f.render(fixture_dir)}"
                )
                failures += 1
    status = "ok" if failures == 0 else f"{failures} failure(s)"
    print(
        f"analock-lint self-test: {len(files)} fixtures, "
        f"{total_expected} expected violations, {status}"
    )
    return 0 if failures == 0 else 1


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="analock-lint", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--root", type=Path, help="repository root to scan")
    parser.add_argument(
        "--allowlist",
        type=Path,
        default=None,
        help="path-scoped suppression file (default: <root>/tools/"
        "analock_lint/allowlist.conf)",
    )
    parser.add_argument(
        "--self-test",
        type=Path,
        metavar="FIXTURE_DIR",
        help="run the golden-fixture self test instead of a tree scan",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="scan N files in parallel (0 = one per CPU; default 1)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="findings output format for tree scans (default text)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="subpaths of --root to scan (default: the whole root)",
    )
    args = parser.parse_args(argv)

    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    if args.self_test is not None:
        return run_self_test(args.self_test)
    if args.root is None:
        parser.error("either --root or --self-test is required")
    allowlist = args.allowlist
    if allowlist is None:
        allowlist = args.root / "tools" / "analock_lint" / "allowlist.conf"
    return run_tree(
        args.root,
        args.paths,
        allowlist,
        jobs=args.jobs,
        output_format=args.output_format,
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
