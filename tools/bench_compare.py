#!/usr/bin/env python3
"""Diffs two sets of BENCH_*.json trajectory artifacts.

Matches cases by (bench, case) across a baseline set and a candidate set
and compares the robust wall-clock stats the harness records (median,
MAD). A case only counts as a regression when BOTH hold:

  * the median grew by more than --threshold percent, and
  * the growth exceeds the noise floor, taken as 3 sigma where sigma is
    estimated from the larger of the two MADs (sigma ~ 1.4826 * MAD, the
    consistency constant for normal data); runs whose medians sit within
    each other's noise are reported as "ok (noise)".

Prints a markdown table (one row per matched case, plus rows for cases
that appear on only one side) and exits non-zero when any regression was
found, unless --warn-only is given. Counter medians (cycles,
instructions) ride along as informational columns when both sides
recorded hardware counters.

Usage:
  bench_compare.py BASELINE CANDIDATE [--threshold PCT] [--warn-only]

BASELINE and CANDIDATE are directories (every BENCH_*.json inside is
loaded) or individual .json files; either side may mix both.
"""

import argparse
import glob
import json
import os
import sys

MAD_TO_SIGMA = 1.4826  # consistency constant for normally distributed data


def fail(msg: str) -> None:
    print(f"bench_compare: FAIL: {msg}", file=sys.stderr)
    sys.exit(2)


def load_side(paths):
    """Maps (bench, case) -> case dict for every artifact in `paths`."""
    cases = {}
    files = []
    for path in paths:
        if os.path.isdir(path):
            found = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
            if not found:
                fail(f"no BENCH_*.json files in directory {path}")
            files.extend(found)
        elif os.path.isfile(path):
            files.append(path)
        else:
            fail(f"no such file or directory: {path}")
    for path in files:
        with open(path, encoding="utf-8") as handle:
            try:
                doc = json.load(handle)
            except json.JSONDecodeError as err:
                fail(f"{path} is not valid JSON: {err}")
        bench = doc.get("bench")
        if not isinstance(bench, str):
            fail(f"{path}: missing bench name")
        for case in doc.get("cases", []):
            key = (bench, case.get("name"))
            if key in cases:
                fail(f"duplicate case {key} (second copy in {path})")
            cases[key] = case
    if not cases:
        fail("no cases loaded")
    return cases


def median_of(case, counter=None):
    if counter is None:
        return case["wall_ms"]["median"], case["wall_ms"]["mad"]
    stats = case.get("counters", {}).get(counter)
    if stats is None:
        return None, None
    return stats["median"], stats["mad"]


def classify(old_med, old_mad, new_med, new_mad, threshold_pct):
    """Returns (verdict, delta_pct, noise_ms)."""
    delta = new_med - old_med
    delta_pct = 100.0 * delta / old_med if old_med > 0 else 0.0
    sigma = MAD_TO_SIGMA * max(old_mad, new_mad)
    noise = 3.0 * sigma
    if abs(delta) <= noise:
        return "ok (noise)", delta_pct, noise
    if delta_pct > threshold_pct:
        return "REGRESSION", delta_pct, noise
    if delta_pct < -threshold_pct:
        return "improved", delta_pct, noise
    return "ok", delta_pct, noise


def speedup_pairs(cases):
    """Finds (bench, stem, scalar_case, variant_name, variant_case) rows.

    A pair is any `<stem>_scalar` case with a `<stem>_batch_*` sibling in
    the same bench (the convention bench_batch_eval uses); the ratio of
    their wall-clock medians is the batched-engine speedup.
    """
    pairs = []
    for (bench, name), case in sorted(cases.items()):
        if not isinstance(name, str) or not name.endswith("_scalar"):
            continue
        stem = name[: -len("_scalar")]
        for (other_bench, other_name), other in sorted(cases.items()):
            if other_bench != bench or not isinstance(other_name, str):
                continue
            if other_name.startswith(stem + "_batch_"):
                pairs.append((bench, stem, case, other_name, other))
    return pairs


def print_speedups(base, cand):
    """Prints scalar-vs-batch speedup ratios for both artifact sets."""
    rows = []
    for bench, stem, scalar_case, variant, variant_case in speedup_pairs(cand):
        new_ratio = (scalar_case["wall_ms"]["median"] /
                     variant_case["wall_ms"]["median"])
        old_ratio = None
        base_scalar = base.get((bench, stem + "_scalar"))
        base_variant = base.get((bench, variant))
        if base_scalar is not None and base_variant is not None:
            old_ratio = (base_scalar["wall_ms"]["median"] /
                         base_variant["wall_ms"]["median"])
        rows.append((f"{bench}:{stem}", variant,
                     "-" if old_ratio is None else f"{old_ratio:.2f}x",
                     f"{new_ratio:.2f}x"))
    if not rows:
        return
    headers = ("pair", "batch case", "base speedup", "new speedup")
    widths = [max(len(headers[i]), max(len(r[i]) for r in rows))
              for i in range(len(headers))]
    def line(cells):
        return "| " + " | ".join(
            c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"
    print("\nscalar-vs-batch speedup (wall-clock median ratio):")
    print(line(headers))
    print("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in rows:
        print(line(row))


def main() -> None:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json sets")
    parser.add_argument("baseline", help="baseline dir or file")
    parser.add_argument("candidate", help="candidate dir or file")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="median growth percent that counts as a "
                             "regression (default 10)")
    parser.add_argument("--warn-only", action="store_true",
                        help="always exit 0; report regressions only")
    args = parser.parse_args()

    base = load_side([args.baseline])
    cand = load_side([args.candidate])

    rows = []
    regressions = 0
    for key in sorted(set(base) | set(cand)):
        bench, case = key
        label = f"{bench}:{case}"
        if key not in base:
            rows.append((label, "-", "-", "-", "-", "new case"))
            continue
        if key not in cand:
            rows.append((label, "-", "-", "-", "-", "case removed"))
            continue
        old_med, old_mad = median_of(base[key])
        new_med, new_mad = median_of(cand[key])
        verdict, delta_pct, noise = classify(
            old_med, old_mad, new_med, new_mad, args.threshold)
        if verdict == "REGRESSION":
            regressions += 1
        rows.append((label, f"{old_med:.3f}", f"{new_med:.3f}",
                     f"{delta_pct:+.1f}%", f"{noise:.3f}", verdict))

    headers = ("case", "base median [ms]", "new median [ms]", "delta",
               "noise floor [ms]", "verdict")
    widths = [max(len(headers[i]), max(len(r[i]) for r in rows))
              for i in range(len(headers))]
    def line(cells):
        return "| " + " | ".join(
            c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"
    print(line(headers))
    print("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in rows:
        print(line(row))

    print_speedups(base, cand)

    print(f"\nbench_compare: {len(rows)} cases, {regressions} regressions "
          f"(threshold {args.threshold:.1f}%, noise 3*{MAD_TO_SIGMA}*MAD)")
    if regressions and not args.warn_only:
        sys.exit(1)


if __name__ == "__main__":
    main()
