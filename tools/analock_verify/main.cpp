// analock-verify — the repo's own static-analysis CLI.
//
//   analock_verify --root src                      scan a tree
//   analock_verify --root src --sarif out.sarif    also write SARIF
//   analock_verify --root src --diff-baseline b    fail only on NEW findings
//   analock_verify --self-test tests/verify_fixtures
//   analock_verify --list-rules
//
// Exit codes: 0 = clean, 1 = findings (or self-test failure),
// 2 = usage/IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/engine.h"
#include "analysis/model.h"
#include "analysis/sarif.h"

namespace fs = std::filesystem;
using analock::analysis::Engine;
using analock::analysis::Finding;

namespace {

const char* const kUsage =
    "usage: analock_verify [--root DIR] [paths...] [options]\n"
    "\n"
    "options:\n"
    "  --root DIR            scan DIR recursively (default: .)\n"
    "  --sarif FILE          write findings as SARIF v2.1.0\n"
    "  --diff-baseline FILE  suppress findings whose fingerprint is in\n"
    "                        FILE (a SARIF log); report only new ones\n"
    "  --update-baseline     rewrite the --diff-baseline file with the\n"
    "                        current findings (sorted by fingerprint)\n"
    "  --max-depth N         taint propagation depth (default 4)\n"
    "  --self-test DIR       run against '// expect:' fixture tree\n"
    "  --exit-zero           always exit 0 when the scan itself worked\n"
    "  --list-rules          print the rule catalog and exit\n";

const std::set<std::string> kSourceSuffixes = {".cpp", ".cc", ".cxx", ".h",
                                               ".hpp"};
const std::set<std::string> kExcludedDirs = {"build", ".git", "lint_fixtures",
                                             "verify_fixtures", "third_party"};

bool is_excluded_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  if (kExcludedDirs.count(name) > 0) return true;
  return name.rfind("build", 0) == 0;  // build-*, build.tsan, ...
}

std::vector<fs::path> gather_sources(const fs::path& root) {
  std::vector<fs::path> files;
  if (fs::is_regular_file(root)) {
    files.push_back(root);
    return files;
  }
  std::error_code ec;
  fs::recursive_directory_iterator it(root, ec), end;
  for (; it != end; it.increment(ec)) {
    if (ec) break;
    const fs::path& p = it->path();
    if (it->is_directory()) {
      if (is_excluded_dir(p)) it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file()) continue;
    if (kSourceSuffixes.count(p.extension().string()) > 0) {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Self-test: every fixture line annotated `// expect: rule[, rule]`
/// must produce those findings on the same or previous line, and no
/// unannotated finding may appear. All fixtures load into ONE engine so
/// cross-TU fixtures resolve against each other.
int run_self_test(const fs::path& fixture_dir, int max_depth) {
  const std::vector<fs::path> files = gather_sources(fixture_dir);
  if (files.empty()) {
    std::cerr << "analock_verify: no fixtures under " << fixture_dir << "\n";
    return 2;
  }
  Engine::Options options;
  options.max_depth = max_depth;
  Engine engine(options);

  // (file, line) -> expected rules. The annotation covers its own line
  // and, for comment-only lines, the line below.
  std::map<std::pair<std::string, int>, std::set<std::string>> expected;
  std::map<std::string, std::vector<std::string>> file_lines;
  for (const fs::path& path : files) {
    std::string text;
    if (!read_file(path, text)) {
      std::cerr << "analock_verify: cannot read " << path << "\n";
      return 2;
    }
    const std::string display = path.generic_string();
    std::istringstream stream(text);
    std::string line;
    int lineno = 0;
    std::vector<std::string> lines;
    while (std::getline(stream, line)) {
      ++lineno;
      lines.push_back(line);
      const std::size_t tag = line.find("// expect:");
      if (tag == std::string::npos) continue;
      std::set<std::string> rules;
      std::string current;
      for (const char c : line.substr(tag + 10)) {
        if (c == ',') {
          if (!current.empty()) rules.insert(current);
          current.clear();
        } else if (c != ' ' && c != '\t') {
          current += c;
        }
      }
      if (!current.empty()) rules.insert(current);
      expected[{display, lineno}] = rules;
    }
    file_lines[display] = std::move(lines);
    engine.add_source(display, std::move(text));
  }

  const std::vector<Finding> findings = engine.run();
  int failures = 0;
  std::set<std::pair<std::string, int>> satisfied;
  for (const Finding& f : findings) {
    // A finding satisfies an expect on its own line or the line above
    // (comment-only annotation preceding the flagged statement).
    bool matched = false;
    for (const int line : {f.line, f.line - 1}) {
      const auto it = expected.find({f.file, line});
      if (it != expected.end() && it->second.count(f.rule) > 0) {
        satisfied.insert({f.file, line});
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::cerr << "UNEXPECTED: " << f.render() << "\n";
      ++failures;
    }
  }
  for (const auto& [key, rules] : expected) {
    if (satisfied.count(key) > 0) continue;
    std::string joined;
    for (const std::string& r : rules) {
      if (!joined.empty()) joined += ", ";
      joined += r;
    }
    std::cerr << "MISSED: " << key.first << ":" << key.second
              << ": expected [" << joined << "]\n";
    ++failures;
  }
  if (failures > 0) {
    std::cerr << "analock_verify self-test: " << failures << " failure(s)\n";
    return 1;
  }
  std::cout << "analock_verify self-test: " << expected.size()
            << " expectation(s) across " << files.size()
            << " fixture(s), all satisfied\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string sarif_path;
  std::string baseline_path;
  std::string self_test_dir;
  int max_depth = 4;
  bool exit_zero = false;
  bool update_baseline = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "analock_verify: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      roots.push_back(next("--root"));
    } else if (arg == "--sarif") {
      sarif_path = next("--sarif");
    } else if (arg == "--diff-baseline") {
      baseline_path = next("--diff-baseline");
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--max-depth") {
      max_depth = std::atoi(next("--max-depth"));
      if (max_depth < 1) max_depth = 1;
    } else if (arg == "--self-test") {
      self_test_dir = next("--self-test");
    } else if (arg == "--exit-zero") {
      exit_zero = true;
    } else if (arg == "--list-rules") {
      for (const auto& rule : analock::analysis::rule_catalog()) {
        std::cout << rule.id << "\t" << rule.short_description << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "analock_verify: unknown option '" << arg << "'\n"
                << kUsage;
      return 2;
    } else {
      roots.push_back(arg);
    }
  }

  if (!self_test_dir.empty()) {
    return run_self_test(self_test_dir, max_depth);
  }
  if (roots.empty()) roots.push_back(".");

  Engine::Options options;
  options.max_depth = max_depth;
  Engine engine(options);
  std::size_t loaded = 0;
  for (const std::string& root : roots) {
    const fs::path root_path(root);
    if (!fs::exists(root_path)) {
      std::cerr << "analock_verify: no such path: " << root << "\n";
      return 2;
    }
    for (const fs::path& path : gather_sources(root_path)) {
      std::string text;
      if (!read_file(path, text)) {
        std::cerr << "analock_verify: cannot read " << path << "\n";
        return 2;
      }
      // Display paths (and therefore fingerprints) must not depend on
      // how the root was spelled: "src" and /abs/path/to/src both map
      // a file to "src/...", keeping baselines portable across
      // invocations and checkouts.
      std::string display;
      if (fs::is_directory(root_path)) {
        std::error_code rel_ec;
        const fs::path rel = fs::relative(path, root_path, rel_ec);
        const fs::path base = root_path.filename().empty()
                                  ? root_path.parent_path().filename()
                                  : root_path.filename();
        display = rel_ec ? path.generic_string()
                         : (base / rel).generic_string();
      } else {
        display = path.filename().generic_string();
      }
      engine.add_source(std::move(display), std::move(text));
      ++loaded;
    }
  }
  if (loaded == 0) {
    std::cerr << "analock_verify: no C++ sources found\n";
    return 2;
  }

  std::vector<Finding> findings = engine.run();

  if (update_baseline) {
    if (baseline_path.empty()) {
      std::cerr << "analock_verify: --update-baseline needs "
                   "--diff-baseline FILE to know where to write\n";
      return 2;
    }
    // The baseline is a SARIF log ordered by fingerprint, so rewrites
    // diff cleanly no matter how the scan ordered the findings.
    std::vector<Finding> sorted = findings;
    std::sort(sorted.begin(), sorted.end(),
              [](const Finding& a, const Finding& b) {
                if (a.fingerprint != b.fingerprint) {
                  return a.fingerprint < b.fingerprint;
                }
                if (a.file != b.file) return a.file < b.file;
                return a.line < b.line;
              });
    std::ofstream out(baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "analock_verify: cannot write baseline " << baseline_path
                << "\n";
      return 2;
    }
    out << analock::analysis::to_sarif(sorted);
    std::cout << "analock_verify: baseline " << baseline_path
              << " rewritten with " << sorted.size() << " finding(s)\n";
    return 0;
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::cerr << "analock_verify: cannot write " << sarif_path << "\n";
      return 2;
    }
    out << analock::analysis::to_sarif(findings);
  }

  if (!baseline_path.empty()) {
    std::string baseline_text;
    if (!read_file(baseline_path, baseline_text)) {
      std::cerr << "analock_verify: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    const std::set<std::string> known =
        analock::analysis::load_baseline_fingerprints(baseline_text);
    std::vector<Finding> fresh;
    for (Finding& f : findings) {
      if (known.count(f.fingerprint) == 0) fresh.push_back(std::move(f));
    }
    const std::size_t suppressed = findings.size() - fresh.size();
    findings = std::move(fresh);
    if (suppressed > 0) {
      std::cout << "analock_verify: " << suppressed
                << " baselined finding(s) suppressed\n";
    }
  }

  for (const Finding& f : findings) {
    std::cout << f.render() << "\n";
  }
  std::cout << "analock_verify: scanned " << loaded << " file(s), "
            << findings.size() << " finding(s)\n";
  if (exit_zero) return 0;
  return findings.empty() ? 0 : 1;
}
