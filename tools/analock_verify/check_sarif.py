#!/usr/bin/env python3
"""Structural validator for analock-verify SARIF output.

Checks the emitted log against the SARIF v2.1.0 shape we rely on
downstream (GitHub code scanning, baseline diffing) without needing the
jsonschema package: required top-level fields, run/tool/driver layout,
rule metadata, and per-result ruleId/ruleIndex/message/location/
fingerprint integrity.

Exit codes: 0 = valid, 1 = validation failure, 2 = usage/IO error.
"""
from __future__ import annotations

import argparse
import json
import sys

EXPECTED_SCHEMA_FRAGMENT = "sarif-schema-2.1.0.json"
FINGERPRINT_KEY = "analockFingerprint/v1"


def fail(errors: list[str], message: str) -> None:
    errors.append(message)


def check_result(result: object, index: int, rule_ids: list[str],
                 errors: list[str]) -> None:
    prefix = f"results[{index}]"
    if not isinstance(result, dict):
        fail(errors, f"{prefix}: not an object")
        return
    rule_id = result.get("ruleId")
    if not isinstance(rule_id, str) or not rule_id:
        fail(errors, f"{prefix}: missing ruleId")
    elif rule_id not in rule_ids:
        fail(errors, f"{prefix}: ruleId '{rule_id}' not in driver rules")
    rule_index = result.get("ruleIndex")
    if not isinstance(rule_index, int) or not 0 <= rule_index < len(rule_ids):
        fail(errors, f"{prefix}: ruleIndex out of range")
    elif isinstance(rule_id, str) and rule_ids[rule_index] != rule_id:
        fail(errors, f"{prefix}: ruleIndex does not match ruleId")
    if result.get("level") not in ("warning", "error", "note", "none"):
        fail(errors, f"{prefix}: invalid level")
    message = result.get("message")
    if not isinstance(message, dict) or not isinstance(
            message.get("text"), str) or not message["text"]:
        fail(errors, f"{prefix}: missing message.text")
    locations = result.get("locations")
    if not isinstance(locations, list) or not locations:
        fail(errors, f"{prefix}: missing locations")
    else:
        physical = locations[0].get("physicalLocation") if isinstance(
            locations[0], dict) else None
        if not isinstance(physical, dict):
            fail(errors, f"{prefix}: missing physicalLocation")
        else:
            artifact = physical.get("artifactLocation")
            if not isinstance(artifact, dict) or not isinstance(
                    artifact.get("uri"), str) or not artifact["uri"]:
                fail(errors, f"{prefix}: missing artifactLocation.uri")
            region = physical.get("region")
            if not isinstance(region, dict):
                fail(errors, f"{prefix}: missing region")
            else:
                for field in ("startLine", "startColumn"):
                    value = region.get(field)
                    if not isinstance(value, int) or value < 1:
                        fail(errors, f"{prefix}: region.{field} must be >= 1")
    fingerprints = result.get("partialFingerprints")
    if not isinstance(fingerprints, dict):
        fail(errors, f"{prefix}: missing partialFingerprints")
    else:
        value = fingerprints.get(FINGERPRINT_KEY)
        if not isinstance(value, str) or len(value) != 16:
            fail(errors,
                 f"{prefix}: {FINGERPRINT_KEY} must be a 16-char hash")


def validate(doc: object, require_results: bool) -> list[str]:
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["top level: not a JSON object"]
    schema = doc.get("$schema")
    if not isinstance(schema, str) or EXPECTED_SCHEMA_FRAGMENT not in schema:
        fail(errors, "top level: $schema does not reference SARIF 2.1.0")
    if doc.get("version") != "2.1.0":
        fail(errors, "top level: version must be '2.1.0'")
    runs = doc.get("runs")
    if not isinstance(runs, list) or len(runs) != 1:
        fail(errors, "top level: expected exactly one run")
        return errors
    run = runs[0]
    if not isinstance(run, dict):
        return errors + ["runs[0]: not an object"]
    driver = run.get("tool", {}).get("driver") if isinstance(
        run.get("tool"), dict) else None
    if not isinstance(driver, dict):
        fail(errors, "runs[0]: missing tool.driver")
        return errors
    if driver.get("name") != "analock-verify":
        fail(errors, "driver: name must be 'analock-verify'")
    if not isinstance(driver.get("version"), str):
        fail(errors, "driver: missing version")
    rules = driver.get("rules")
    rule_ids: list[str] = []
    if not isinstance(rules, list) or not rules:
        fail(errors, "driver: missing rules array")
    else:
        for i, rule in enumerate(rules):
            rid = rule.get("id") if isinstance(rule, dict) else None
            if not isinstance(rid, str) or not rid:
                fail(errors, f"rules[{i}]: missing id")
                rid = ""
            short = rule.get("shortDescription") if isinstance(
                rule, dict) else None
            # Every rule id must carry a NON-EMPTY human-readable
            # description: code-scanning UIs render the id bare
            # otherwise, and an empty string slips past a plain
            # isinstance check.
            if not isinstance(short, dict) or not isinstance(
                    short.get("text"), str) or not short["text"].strip():
                fail(errors,
                     f"rules[{i}] ('{rid}'): shortDescription.text missing "
                     "or empty")
            rule_ids.append(rid)
    results = run.get("results")
    if not isinstance(results, list):
        fail(errors, "runs[0]: missing results array")
        return errors
    if require_results and not results:
        fail(errors, "runs[0]: results is empty but --require-results set")
    for i, result in enumerate(results):
        check_result(result, i, rule_ids, errors)
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("sarif", help="path to the SARIF file to validate")
    parser.add_argument(
        "--require-results", action="store_true",
        help="fail when the log contains zero results (guards against "
        "validating a trivially empty emission)")
    args = parser.parse_args()
    try:
        with open(args.sarif, encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        print(f"check_sarif: cannot read {args.sarif}: {exc}",
              file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"check_sarif: {args.sarif} is not valid JSON: {exc}",
              file=sys.stderr)
        return 1
    errors = validate(doc, args.require_results)
    if errors:
        for error in errors:
            print(f"check_sarif: {error}", file=sys.stderr)
        return 1
    result_count = len(doc["runs"][0]["results"])
    print(f"check_sarif: OK ({result_count} result(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
