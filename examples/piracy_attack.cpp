// The pirate's view (paper Section IV.B): an overproducing foundry holds
// working silicon and the netlist but no keys. This example runs the
// attack suite against one chip and prints the projected real-world cost
// of each attempt.
//
// Build & run:  ./build/examples/piracy_attack
#include <cstdio>

#include "attack/brute_force.h"
#include "attack/cost_model.h"
#include "attack/multi_objective.h"
#include "attack/warm_start.h"
#include "calib/calibrator.h"
#include "lock/evaluator.h"
#include "rf/standards.h"
#include "sim/process.h"
#include "sim/rng.h"

using namespace analock;

int main() {
  const rf::Standard& mode = rf::standard_max_3ghz();
  sim::Rng fab(31415);
  const auto process = sim::ProcessVariation::monte_carlo(fab, 0);
  const sim::Rng chip_rng = fab.fork("chip", 0);

  std::printf("=== piracy attacks against a locked %s receiver ===\n\n",
              std::string(mode.name).c_str());

  lock::LockEvaluator ev(mode, process, chip_rng);
  const attack::TrialCosts costs;

  // --- Attack 1: brute force ---------------------------------------
  {
    attack::BruteForceAttack bf(ev, sim::Rng(1));
    attack::BruteForceOptions options;
    options.max_trials = 300;
    const auto r = bf.run(options);
    std::printf("brute force, %llu random keys: %s (best screen SNR "
                "%.1f dB — a deceptive analog observation that fails the "
                "full spec)\n",
                (unsigned long long)r.trials,
                r.success ? "UNLOCKED" : "failed", r.best_screen_snr_db);
    std::printf("  cost so far: %.0f h of transistor-level simulation, or "
                "%.1f s on re-fabbed silicon (re-fab: ~%.0f weeks, ~$%.1fM)\n",
                r.cost.simulation_hours(costs),
                r.cost.hardware_seconds(costs), costs.refab_weeks,
                costs.refab_usd / 1e6);
  }

  // --- Attack 2: multi-objective optimization ----------------------
  {
    attack::CoordinateDescentAttack cd(ev, sim::Rng(2));
    attack::MultiObjectiveOptions options;
    options.max_trials = 1000;
    options.passes = 2;
    const auto r = cd.run(options);
    std::printf("\ncoordinate descent (cold start), %llu trials: %s "
                "(screen %.1f dB — the optimizer climbs into a deceptive "
                "observation mode and never meets the spec)\n",
                (unsigned long long)r.trials,
                r.success ? "UNLOCKED" : "stalled", r.best_screen_snr_db);
    std::printf("  paper: only a small subset of programming bits relates "
                "smoothly to a performance, and only once the rest are "
                "correct\n");
  }

  // --- Attack 3: the dangerous one — a leaked key from another chip -
  {
    // Suppose the pirate legally bought one programmed chip and extracted
    // its key (e.g. by probing the LUT bus), then wants to unlock a
    // SECOND, overproduced chip.
    const auto donor_pv = sim::ProcessVariation::monte_carlo(fab, 1);
    calib::Calibrator donor_cal(mode, donor_pv, fab.fork("chip", 1));
    const auto donor = donor_cal.run();

    attack::WarmStartAttack ws(ev, sim::Rng(3));
    attack::WarmStartOptions options;
    options.max_trials = 1500;
    const auto r = ws.run(donor.key, options);
    std::printf("\nwarm start from a leaked key, %llu trials: %s "
                "(rx %.1f dB, SFDR %.1f dB, moved %u bits)\n",
                (unsigned long long)r.trials,
                r.success ? "UNLOCKED" : "failed", r.receiver_snr_db,
                r.sfdr_db, r.hamming_moved);
    std::printf("  cost: %.0f h of simulation per pirated chip, or %.1f s "
                "each on re-fabbed hardware\n",
                r.cost.simulation_hours(costs),
                r.cost.hardware_seconds(costs));
    std::printf("  -> this is the paper's Section IV.B.3 residual risk: "
                "per-chip keys force per-chip search, and leaked keys make "
                "good starting points. The defense is the per-trial cost "
                "and keeping keys out of attacker reach (PUF wrapping, "
                "power-on loading).\n");
  }
  return 0;
}
