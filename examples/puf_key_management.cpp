// PUF-based key management (paper Fig. 3b) and the counterfeiting
// defenses it enables: cloning, overproduction, recycling, remarking.
//
// Build & run:  ./build/examples/puf_key_management
#include <cstdio>

#include "calib/calibrator.h"
#include "lock/evaluator.h"
#include "lock/key_manager.h"
#include "lock/locked_receiver.h"
#include "lock/puf.h"
#include "lock/remote_activation.h"
#include "rf/standards.h"
#include "sim/process.h"
#include "sim/rng.h"

using namespace analock;

int main() {
  const rf::Standard& mode = rf::standard_max_3ghz();
  sim::Rng fab(606);

  std::printf("=== PUF + XOR key management (Fig. 3b) ===\n\n");

  // Genuine chip: calibrate and wrap the key with the die's own PUF.
  const auto pv = sim::ProcessVariation::monte_carlo(fab, 0);
  const sim::Rng chip_rng = fab.fork("chip", 0);
  calib::Calibrator calibrator(mode, pv, chip_rng);
  const auto cal = calibrator.run();

  lock::ArbiterPuf puf(chip_rng.fork("puf"));
  lock::PufXorScheme scheme(puf, 1);
  scheme.provision(0, cal.key);
  std::printf("config key : %s (secret, never stored)\n",
              cal.key.to_hex().c_str());
  std::printf("id key     : %s (PUF, exists only on this die)\n",
              puf.identification_key(0).to_hex().c_str());
  std::printf("user key   : %s (shipped to the customer, safe to expose)\n",
              scheme.user_key(0)->to_hex().c_str());

  // Power-on: the chip regenerates the id key and unwraps.
  lock::LockedReceiver genuine(mode, pv, chip_rng);
  genuine.power_on(scheme, 0);
  lock::LockEvaluator ev(mode, pv, chip_rng);
  std::printf("\n[genuine] power-on: rx SNR %.1f dB -> %s\n",
              ev.snr_receiver_db(*genuine.active_key()),
              ev.evaluate(*genuine.active_key()).unlocked() ? "UNLOCKED"
                                                            : "locked");

  // Cloning: the user key copied onto a different die.
  const auto clone_pv = sim::ProcessVariation::monte_carlo(fab, 1);
  const sim::Rng clone_rng = fab.fork("chip", 1);
  lock::ArbiterPuf clone_puf(clone_rng.fork("puf"));
  lock::PufXorScheme clone_scheme(clone_puf, 1);
  clone_scheme.install_user_key(0, *scheme.user_key(0));
  lock::LockedReceiver clone(mode, clone_pv, clone_rng);
  clone.power_on(clone_scheme, 0);
  lock::LockEvaluator clone_ev(mode, clone_pv, clone_rng);
  std::printf("[clone]   stolen user key unwraps %u/64 bits wrong -> rx "
              "SNR %.1f dB -> locked\n",
              clone.active_key()->hamming_distance(cal.key),
              clone_ev.snr_receiver_db(*clone.active_key()));

  // Overproduction: extra dies leave the fab unprovisioned.
  lock::PufXorScheme empty(clone_puf, 1);
  lock::LockedReceiver gray(mode, clone_pv, clone_rng);
  std::printf("[overrun] unprovisioned die: power-on %s\n",
              gray.power_on(empty, 0) ? "loaded (?)" : "refused -> dead");

  // Recycling: user keys are re-loaded at every power-on, so a pulled
  // part without its key material will not run (paper Section IV.C).
  std::printf("[recycle] a desoldered part ships without the user key; "
              "without it the fabric stays in the all-zero state\n");

  // Remarking: the design house poisons failed parts.
  lock::TamperProofLutScheme lut(1);
  lut.provision(0, cal.key);
  sim::Rng poison(1);
  lut.poison(0, poison);
  lock::LockedReceiver remarked(mode, pv, chip_rng);
  remarked.power_on(lut, 0);
  std::printf("[remark]  poisoned LUT entry: rx SNR %.1f dB -> totally "
              "malfunctional\n",
              ev.snr_receiver_db(*remarked.active_key()));

  // High-volume flow (paper IV.B.4): remote activation — the chip derives
  // an RSA pair from its PUF; the design house never exposes a plaintext
  // key to the untrusted test floor.
  std::printf("\n=== remote activation (EPIC-style, Sec. IV.B.4) ===\n");
  lock::RemoteActivationChip remote(puf, 1);
  const auto pub = remote.public_key();
  std::printf("chip publishes n=%llu e=%llu; design house wraps the key\n",
              (unsigned long long)pub.n, (unsigned long long)pub.e);
  const auto wrapped = lock::wrap_key(cal.key, pub);
  std::printf("ciphertext on the test floor: {%016llx, %016llx}\n",
              (unsigned long long)wrapped.c_lo,
              (unsigned long long)wrapped.c_hi);
  remote.install_wrapped_key(0, wrapped);
  lock::LockedReceiver activated(mode, pv, chip_rng);
  activated.power_on(remote, 0);
  std::printf("chip decrypts internally and unlocks: rx SNR %.1f dB\n",
              ev.snr_receiver_db(*activated.active_key()));
  // The same ciphertext diverted to the clone die is rejected.
  lock::RemoteActivationChip clone_remote(clone_puf, 1);
  std::printf("same ciphertext on a cloned die: install %s\n",
              clone_remote.install_wrapped_key(0, wrapped)
                  ? "accepted (?)"
                  : "REJECTED (framing check fails under the wrong key)");
  return 0;
}
