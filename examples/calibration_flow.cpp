// The 14-step calibration procedure in slow motion (paper Section V.B).
//
// Walks a fresh chip through the oscillation-mode tank tuning, the -Gm
// backoff and the iterative bias optimization, narrating what the ATE
// sees at each step — this procedure, together with the key it produces,
// is the secret the locking scheme protects.
//
// Build & run:  ./build/examples/calibration_flow
#include <cstdio>

#include "calib/bias_optimizer.h"
#include "calib/calibrator.h"
#include "calib/oscillation_tuner.h"
#include "calib/q_tuner.h"
#include "lock/evaluator.h"
#include "lock/key_layout.h"
#include "rf/receiver.h"
#include "rf/standards.h"
#include "sim/process.h"
#include "sim/rng.h"

using namespace analock;

int main() {
  const rf::Standard& mode = rf::standard_max_3ghz();
  sim::Rng fab(2718);
  const auto process = sim::ProcessVariation::monte_carlo(fab, 11);
  const sim::Rng chip_rng = fab.fork("chip", 11);

  std::printf("=== 14-step calibration walk-through, F0 = %.1f GHz ===\n\n",
              mode.f0_hz / 1e9);
  std::printf("chip corner: tank C %+.1f%%, L %+.1f%%, Q0 %.1f, parasitic "
              "loop delay %.2f samples\n\n",
              100.0 * process.tank_c_rel, 100.0 * process.tank_l_rel,
              process.tank_q_intrinsic, process.loop_delay_parasitic);

  rf::Receiver dut(mode, process, chip_rng.fork("calibration-dut"));

  std::printf("steps 1-5: comparator -> buffer, output buffer -> pad, Gmin "
              "off, loop off, -Gm max (oscillation mode)\n");

  // Step 6: watch the frequency counter converge.
  calib::OscillationTuner osc(dut);
  std::printf("step 6: capacitor search (frequency counter readings)\n");
  for (std::uint32_t coarse : {0u, 32u, 64u, 16u, 8u}) {
    const auto m = osc.measure(coarse, 128);
    std::printf("   probe Cc=%3u Cf=128 -> %.4f GHz (rms %.2f)\n", coarse,
                m.freq_hz / 1e9, m.rms);
  }
  const auto tank = osc.tune(mode.f0_hz);
  std::printf("   converged: Cc=%u Cf=%u -> %.5f GHz (target %.5f) after "
              "%zu measurements\n",
              tank.cap_coarse, tank.cap_fine, tank.achieved_hz / 1e9,
              mode.f0_hz / 1e9, tank.measurements);

  // Step 7: -Gm backoff.
  calib::QTuner q(dut);
  const auto q_result = q.tune(tank.cap_coarse, tank.cap_fine);
  std::printf("step 7: -Gm reduced %u -> %u; oscillation vanished below "
              "code %u\n",
              rf::LcTank::kQEnhMax, q_result.q_enh, q_result.q_threshold);

  std::printf("steps 8-10: loop restored, RF input applied, Fs = 4 F0\n");

  // Steps 11-14 via the full calibrator (loop delay + biases + VGLNA).
  calib::Calibrator calibrator(mode, process, chip_rng);
  const auto cal = calibrator.run();
  std::printf("steps 11-14: loop delay = %u, biases (Gmin/DAC/pre/comp) = "
              "%u/%u/%u/%u, VGLNA per segment = %u/%u/%u\n",
              cal.config.modulator.loop_delay, cal.config.modulator.gmin_bias,
              cal.config.modulator.dac_bias, cal.config.modulator.preamp_bias,
              cal.config.modulator.comp_bias, cal.vglna_per_segment[0],
              cal.vglna_per_segment[1], cal.vglna_per_segment[2]);

  std::printf("\nresult: %s | SNR(mod) %.1f dB, SNR(rx) %.1f dB, SFDR %.1f "
              "dB | %zu measurements total\n",
              cal.success ? "PASS" : "FAIL", cal.snr_modulator_db,
              cal.snr_receiver_db, cal.sfdr_db, cal.total_measurements);
  std::printf("secret key: %s\n\n", cal.key.to_hex().c_str());

  std::printf("why an attacker cannot retrace this (paper VI.B.2):\n"
              "  (a) the chip must be reconfigured multiple times in a "
              "specific sequence;\n"
              "  (b) initial bias words come from design-time simulation "
              "the attacker lacks;\n"
              "  (c) the block calibration order matters;\n"
              "  (d) the feedback loop prevents per-block calibration.\n");
  return 0;
}
