// Quickstart: the complete locking lifecycle on one chip.
//
//   fabricate -> calibrate (14-step secret procedure) -> provision the
//   key manager -> power on in the field -> verify performance ->
//   demonstrate that a wrong key breaks the receiver.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "calib/calibrator.h"
#include "lock/evaluator.h"
#include "lock/key_manager.h"
#include "lock/locked_receiver.h"
#include "rf/standards.h"
#include "sim/process.h"
#include "sim/rng.h"

using namespace analock;

int main() {
  const rf::Standard& mode = rf::standard_max_3ghz();
  std::printf("=== analock quickstart: %s (F0 = %.1f GHz, fs = %.1f GHz) "
              "===\n\n",
              std::string(mode.name).c_str(), mode.f0_hz / 1e9,
              mode.fs_hz() / 1e9);

  // 1. Fabricate a chip: a unique process corner drawn from the fab.
  sim::Rng fab(12345);
  const auto process = sim::ProcessVariation::monte_carlo(fab, /*chip_id=*/7);
  const sim::Rng chip_rng = fab.fork("chip", 7);
  std::printf("[fab]   chip 7: tank C %+.1f%%, L %+.1f%%, Q0 = %.1f\n",
              100.0 * process.tank_c_rel, 100.0 * process.tank_l_rel,
              process.tank_q_intrinsic);

  // 2. Calibrate in the design house's secured environment. The returned
  //    64-bit configuration word IS the secret key.
  calib::Calibrator calibrator(mode, process, chip_rng);
  const auto cal = calibrator.run();
  std::printf("[cal]   %s | SNR %.1f dB, SFDR %.1f dB, tank error %.0f kHz, "
              "%zu ATE measurements\n",
              cal.success ? "calibrated" : "FAILED", cal.snr_receiver_db,
              cal.sfdr_db, cal.tank_freq_err_hz / 1e3,
              cal.total_measurements);
  std::printf("[cal]   secret key: %s\n", cal.key.to_hex().c_str());

  // 3. Provision the tamper-proof LUT (Fig. 3a) and ship the chip.
  lock::TamperProofLutScheme lut(1);
  lut.provision(0, cal.key);

  // 4. In the field: power-on loads the configuration from the LUT.
  lock::LockedReceiver fielded(mode, process, chip_rng);
  if (!fielded.power_on(lut, 0)) {
    std::printf("[field] power-on failed!\n");
    return 1;
  }
  lock::LockEvaluator ev(mode, process, chip_rng);
  const auto report = ev.evaluate(*fielded.active_key());
  std::printf("[field] power-on OK: SNR(mod) %.1f dB, SNR(rx) %.1f dB, "
              "SFDR %.1f dB -> %s\n",
              report.snr_modulator_db, report.snr_receiver_db,
              report.sfdr_db, report.unlocked() ? "UNLOCKED" : "locked");

  // 5. A pirate with the netlist but no key guesses configurations.
  sim::Rng pirate(999);
  const auto guess = lock::Key64::random(pirate);
  const auto pirated = ev.evaluate(guess);
  std::printf("[pirate] random key %s: SNR(rx) %.1f dB, SFDR %.1f dB -> "
              "%s\n",
              guess.to_hex().c_str(), pirated.snr_receiver_db,
              pirated.sfdr_db, pirated.unlocked() ? "UNLOCKED" : "locked");

  // 6. Even one wrong capacitor bit costs real margin; a wrong mode bit
  //    is fatal.
  const auto near_miss =
      cal.key.with_field(lock::KeyLayout::kCapCoarse,
                         cal.config.modulator.cap_coarse + 8);
  std::printf("[pirate] near-miss key (+8 coarse codes): SNR(rx) %.1f dB "
              "-> %s\n",
              ev.snr_receiver_db(near_miss),
              ev.evaluate(near_miss).unlocked() ? "UNLOCKED" : "locked");
  return 0;
}
