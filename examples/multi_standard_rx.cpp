// Multi-standard operation: one chip, one LUT line per standard
// (paper Fig. 3a / Section III objective (c)).
//
// Calibrates the same die for Bluetooth, ZigBee and WiFi 802.11b, stores
// the three configuration settings in the tamper-proof LUT, then switches
// operation modes at runtime the way the fielded chip would.
//
// Build & run:  ./build/examples/multi_standard_rx
#include <cstdio>
#include <vector>

#include "calib/calibrator.h"
#include "lock/evaluator.h"
#include "lock/key_manager.h"
#include "lock/locked_receiver.h"
#include "rf/standards.h"
#include "sim/process.h"
#include "sim/rng.h"

using namespace analock;

int main() {
  const std::vector<const rf::Standard*> modes = {
      &rf::standard_bluetooth(), &rf::standard_zigbee(),
      &rf::standard_wifi_80211b()};

  sim::Rng fab(777);
  const auto process = sim::ProcessVariation::monte_carlo(fab, 3);
  const sim::Rng chip_rng = fab.fork("chip", 3);

  std::printf("=== multi-standard receiver: one die, %zu operation modes "
              "===\n\n", modes.size());

  // Calibration pass: one configuration setting per standard. Note how
  // the keys differ across standards on the SAME chip — each mode needs
  // its own tank tuning and biases.
  lock::TamperProofLutScheme lut(modes.size());
  std::printf("%-24s %10s %8s %8s %8s %22s\n", "standard", "F0[GHz]",
              "SNR[dB]", "SFDR[dB]", "caps", "configuration key");
  for (std::size_t slot = 0; slot < modes.size(); ++slot) {
    calib::Calibrator calibrator(*modes[slot], process, chip_rng);
    const auto cal = calibrator.run();
    lut.provision(slot, cal.key);
    std::printf("%-24s %10.3f %8.1f %8.1f %4u,%-3u %22s\n",
                std::string(modes[slot]->name).c_str(),
                modes[slot]->f0_hz / 1e9, cal.snr_receiver_db, cal.sfdr_db,
                cal.config.modulator.cap_coarse,
                cal.config.modulator.cap_fine, cal.key.to_hex().c_str());
  }

  // Field operation: the chip commands the LUT to load the programming
  // bits for the selected mode (paper: "in normal operation mode the
  // circuit commands dynamically the memories to load the corresponding
  // programming bits").
  std::printf("\nruntime mode switching:\n");
  for (std::size_t slot = 0; slot < modes.size(); ++slot) {
    lock::LockedReceiver chip(*modes[slot], process, chip_rng);
    if (!chip.power_on(lut, slot)) {
      std::printf("  %-24s load FAILED\n",
                  std::string(modes[slot]->name).c_str());
      continue;
    }
    lock::LockEvaluator ev(*modes[slot], process, chip_rng);
    std::printf("  %-24s loaded slot %zu -> receiver SNR %.1f dB\n",
                std::string(modes[slot]->name).c_str(), slot,
                ev.snr_receiver_db(*chip.active_key()));
  }

  // Cross-mode key confusion: a configuration is specific to its clock
  // plan. Nearby standards (Bluetooth vs WiFi, 0.1% apart in F0) share
  // tank tuning, but a distant mode breaks hard.
  const auto bt_key = lut.load(0);
  lock::LockEvaluator wifi_ev(*modes[2], process, chip_rng);
  const double wifi_snr = wifi_ev.snr_receiver_db(*bt_key);
  lock::LockEvaluator max_ev(rf::standard_max_3ghz(), process, chip_rng);
  const double max_snr = max_ev.snr_receiver_db(*bt_key);
  std::printf("\ncross-mode check with the Bluetooth key:\n");
  std::printf("  on WiFi 802.11b (0.1%% away in F0): rx SNR %.1f dB -> %s\n",
              wifi_snr, wifi_snr >= 40.0 ? "still works (bands overlap)"
                                         : "locked");
  std::printf("  on max-3GHz (23%% away in F0)     : rx SNR %.1f dB -> %s\n",
              max_snr, max_snr >= 40.0 ? "works (?)" : "locked");
  return 0;
}
